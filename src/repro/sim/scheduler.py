"""Discrete-event scheduler.

The scheduler is a priority queue of ``(time, sequence, callback)``
entries.  Ties on time are broken by insertion order (the sequence
number), which makes every simulation fully deterministic: the same
inputs always produce the same interleavings, aborts, and latencies.

The scheduler is deliberately minimal: components (executors, workers,
transports) express their behaviour as callbacks that schedule further
callbacks.  Generators/coroutines for transaction logic are layered on
top by :mod:`repro.runtime.executor` — the scheduler itself knows
nothing about transactions.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable

from repro.errors import SimulationError
from repro.sim.clock import VirtualClock


class Event:
    """A scheduled callback; cancellable."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "_scheduler")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any],
                 args: tuple,
                 scheduler: "SimScheduler | None" = None) -> None:
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self._scheduler = scheduler

    def cancel(self) -> None:
        """Mark the event so the scheduler skips it when popped."""
        if not self.cancelled:
            self.cancelled = True
            # Compact the dead heap entry: the tombstone stays queued
            # until popped, but must not pin the callback's closure or
            # arguments (root transactions, sessions, ...) in memory.
            self.fn = None
            self.args = ()
            if self._scheduler is not None:
                self._scheduler._on_cancel(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"Event(t={self.time:.3f}, seq={self.seq}, fn={name})"


class SimScheduler:
    """The event loop driving a simulation run."""

    __slots__ = ("clock", "_queue", "_seq", "_dispatched", "_running",
                 "_live")

    def __init__(self) -> None:
        self.clock = VirtualClock()
        #: Heap of ``(time, seq, event)`` tuples: seq is unique, so
        #: comparisons resolve on the first two fields at C level and
        #: never reach the event object.
        self._queue: list[tuple[float, int, Event]] = []
        self._seq = 0
        self._dispatched = 0
        self._running = False
        #: Live (non-cancelled, not-yet-dispatched) events; kept in
        #: sync on push/pop/cancel so :meth:`pending` is O(1).
        self._live = 0

    @property
    def now(self) -> float:
        """Current virtual time in microseconds."""
        return self.clock.now

    @property
    def events_dispatched(self) -> int:
        """Number of events executed so far (diagnostics)."""
        return self._dispatched

    def at(self, timestamp: float, fn: Callable[..., Any],
           *args: Any) -> Event:
        """Schedule ``fn(*args)`` at an absolute virtual time."""
        now = self.clock.now
        if timestamp < now:
            if timestamp < now - 1e-9:
                raise SimulationError(
                    f"cannot schedule in the past: now={now}, "
                    f"requested={timestamp}"
                )
            timestamp = now
        event = Event(timestamp, self._seq, fn, args, scheduler=self)
        self._seq += 1
        heappush(self._queue, (timestamp, event.seq, event))
        self._live += 1
        return event

    def _on_cancel(self, event: Event) -> None:
        self._live -= 1

    def after(self, delay: float, fn: Callable[..., Any],
              *args: Any) -> Event:
        """Schedule ``fn(*args)`` after ``delay`` microseconds."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.at(self.clock.now + delay, fn, *args)

    def soon(self, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at the current time (after this event)."""
        return self.at(self.clock.now, fn, *args)

    def run(self, until: float | None = None,
            max_events: int | None = None) -> None:
        """Dispatch events until the queue drains or a bound is reached.

        Args:
            until: stop once the next event is strictly later than this
                virtual time (the clock is left at ``until``).
            max_events: safety valve against runaway simulations.
        """
        if self._running:
            raise SimulationError("scheduler is not re-entrant")
        self._running = True
        try:
            dispatched = 0
            queue = self._queue
            clock = self.clock
            while queue:
                time, __, event = queue[0]
                if event.cancelled:
                    # Already uncounted at cancel(); just drop it.
                    heappop(queue)
                    continue
                if until is not None and time > until:
                    break
                heappop(queue)
                self._live -= 1
                # A cancel() arriving after dispatch must not touch the
                # live counter again.
                event._scheduler = None
                if time > clock.now:
                    clock.now = time
                event.fn(*event.args)
                self._dispatched += 1
                dispatched += 1
                if max_events is not None and dispatched >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; "
                        "possible livelock in the simulation"
                    )
            if until is not None and clock.now < until:
                clock.advance_to(until)
        finally:
            self._running = False

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued.

        O(1): a counter maintained on push/pop/cancel, not a scan of
        the heap (cancelled entries stay queued until popped, so a
        scan would also walk dead events).
        """
        return self._live
