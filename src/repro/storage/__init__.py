"""Transactional storage primitives: versioned records.

The record manager interface the paper mentions ("pre-compiled stored
procedures ... against a record manager interface") is realized by
:class:`~repro.concurrency.occ.OCCSession`, which overlays uncommitted
writes on the committed :class:`~repro.relational.table.Table` state.

Public exports: :class:`VersionedRecord` — the committed row container
carrying the Silo-style TID word and lock state every CC scheme
operates on.
"""

from repro.storage.record import VersionedRecord

__all__ = ["VersionedRecord"]
