"""Transactional storage primitives: the multi-version engine.

The record manager interface the paper mentions ("pre-compiled stored
procedures ... against a record manager interface") is realized by the
CC sessions of :mod:`repro.concurrency`, which overlay uncommitted
writes on the committed :class:`~repro.relational.table.Table` state.

This package provides what those tables are made of:

* :class:`VersionedRecord` / :class:`RecordVersion` — per-key version
  chains carrying the Silo-style TID word and lock state every CC
  scheme operates on, with the snapshot visibility rule
  (``version_at``) and watermark-driven chain GC (``prune_chain``);
* :class:`Store` / :class:`VersionedStore` and the
  :func:`register_store` / :func:`create_store` registry — the
  pluggable record map each table delegates to;
* :class:`StorageCoordinator` / :class:`VersionStats` /
  :class:`SnapshotReadEvent` — the per-database engine state: pinned
  snapshots of in-flight read-only roots (the GC watermark source),
  version counters, and the snapshot-read audit log.
"""

from repro.storage.record import RecordVersion, VersionedRecord
from repro.storage.store import (
    SnapshotReadEvent,
    StorageCoordinator,
    Store,
    VersionedStore,
    VersionStats,
    create_store,
    register_store,
    store_kinds,
)

__all__ = [
    "RecordVersion",
    "VersionedRecord",
    "SnapshotReadEvent",
    "StorageCoordinator",
    "Store",
    "VersionedStore",
    "VersionStats",
    "create_store",
    "register_store",
    "store_kinds",
]
