"""Transactional storage primitives: versioned records.

The record manager interface the paper mentions ("pre-compiled stored
procedures ... against a record manager interface") is realized by
:class:`~repro.concurrency.occ.OCCSession`, which overlays uncommitted
writes on the committed :class:`~repro.relational.table.Table` state.
"""

from repro.storage.record import VersionedRecord

__all__ = ["VersionedRecord"]
