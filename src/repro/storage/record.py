"""Versioned records (Silo-style TID words).

Each committed row lives in exactly one :class:`VersionedRecord`.  The
record carries the transaction id (TID) of the transaction that last
wrote it; OCC read sets remember ``(record, tid_at_read)`` pairs and
validation detects concurrent writers by comparing the current TID.

A lightweight lock field stands in for Silo's TID-word lock bit: write
locks are taken during the validation/installation window (and held
across 2PC phases for multi-container transactions).
"""

from __future__ import annotations

from typing import Any, Mapping


class VersionedRecord:
    """One row version chain collapsed to its latest committed state."""

    __slots__ = ("key", "value", "tid", "locked_by", "deleted")

    def __init__(self, key: tuple, value: dict[str, Any], tid: int) -> None:
        self.key = key
        self.value = value
        self.tid = tid
        #: Transaction id currently holding the write lock, or ``None``.
        self.locked_by: int | None = None
        self.deleted = False

    def is_locked_by_other(self, txn_id: int) -> bool:
        return self.locked_by is not None and self.locked_by != txn_id

    def lock(self, txn_id: int) -> bool:
        """Try to take the write lock; idempotent for the same owner."""
        if self.locked_by is None or self.locked_by == txn_id:
            self.locked_by = txn_id
            return True
        return False

    def unlock(self, txn_id: int) -> None:
        if self.locked_by == txn_id:
            self.locked_by = None

    def install(self, value: Mapping[str, Any], tid: int) -> None:
        """Overwrite the committed image with a new version."""
        self.value = dict(value)
        self.tid = tid
        self.deleted = False

    def mark_deleted(self, tid: int) -> None:
        """Tombstone the record; readers holding it fail validation."""
        self.tid = tid
        self.deleted = True

    def snapshot(self) -> dict[str, Any]:
        """A defensive copy of the committed row image."""
        return dict(self.value)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "deleted" if self.deleted else "live"
        return f"VersionedRecord(key={self.key!r}, tid={self.tid}, {state})"
