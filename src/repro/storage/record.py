"""Versioned records (Silo-style TID words) with version chains.

Each committed row lives in exactly one :class:`VersionedRecord` — the
*head* (newest committed version) of a per-key version chain.  The
record carries the transaction id (TID) of the transaction that last
wrote it; OCC read sets remember ``(record, tid_at_read)`` pairs and
validation detects concurrent writers by comparing the current TID.

Multi-versioning: when snapshot readers are in flight (the store's
keep-watermark is set), installing a new image pushes the superseded
head onto the chain as a :class:`RecordVersion` instead of discarding
it.  :meth:`VersionedRecord.version_at` is the visibility rule — the
newest version with ``tid <= as_of_tid`` — and
:meth:`VersionedRecord.prune_chain` is the watermark-driven GC:
versions older than the newest version at or below the watermark can
never be observed again (every pinned snapshot is at or above the
watermark) and are dropped.  With no watermark (no snapshot readers
pinned) no history is retained at all, so single-version deployments
keep their original memory profile.

A lightweight lock field stands in for Silo's TID-word lock bit: write
locks are taken during the validation/installation window (and held
across 2PC phases for multi-container transactions).
"""

from __future__ import annotations

from typing import Any


class RecordVersion:
    """One superseded committed version on a record's chain.

    ``deleted`` marks a tombstone version: the key did not exist at
    snapshots that resolve to it.  ``prev`` links to the next-older
    version (``None`` at the chain's end).
    """

    __slots__ = ("value", "tid", "deleted", "prev")

    def __init__(self, value: dict[str, Any], tid: int, deleted: bool,
                 prev: "RecordVersion | None") -> None:
        self.value = value
        self.tid = tid
        self.deleted = deleted
        self.prev = prev

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "deleted" if self.deleted else "live"
        return f"RecordVersion(tid={self.tid}, {state})"


class VersionedRecord:
    """Head of one row's version chain: the latest committed state."""

    __slots__ = ("key", "value", "tid", "locked_by", "deleted", "prev")

    def __init__(self, key: tuple, value: dict[str, Any], tid: int) -> None:
        self.key = key
        self.value = value
        self.tid = tid
        #: Transaction id currently holding the write lock, or ``None``.
        self.locked_by: int | None = None
        self.deleted = False
        #: Next-older committed version (``None`` when no snapshot
        #: reader could still need history).
        self.prev: RecordVersion | None = None

    def is_locked_by_other(self, txn_id: int) -> bool:
        return self.locked_by is not None and self.locked_by != txn_id

    def lock(self, txn_id: int) -> bool:
        """Try to take the write lock; idempotent for the same owner."""
        if self.locked_by is None or self.locked_by == txn_id:
            self.locked_by = txn_id
            return True
        return False

    def unlock(self, txn_id: int) -> None:
        if self.locked_by == txn_id:
            self.locked_by = None

    def install(self, value: dict[str, Any], tid: int,
                keep_watermark: int | None = None) -> tuple[int, int]:
        """Install a new committed version at the head of the chain.

        Ownership transfer, not copy: ``value`` must be a dict the
        caller relinquishes (the schema validation every install path
        runs returns a fresh dict, so no defensive copy is needed in
        this hot path).  ``keep_watermark`` is the GC watermark from
        the in-flight snapshot set: when set, the superseded head is
        pushed onto the chain for snapshot readers and the chain is
        pruned below the watermark; when ``None`` no reader can need
        history and the chain is dropped.  Returns ``(versions_kept,
        versions_pruned)`` for the storage counters.
        """
        kept = self._supersede(keep_watermark)
        self.value = value
        self.tid = tid
        self.deleted = False
        return kept, self.prune_chain(keep_watermark)

    def mark_deleted(self, tid: int,
                     keep_watermark: int | None = None) -> tuple[int, int]:
        """Tombstone the record; readers holding it fail validation.

        Like :meth:`install`, the superseded image joins the chain when
        snapshot readers may still need it.
        """
        kept = self._supersede(keep_watermark)
        self.tid = tid
        self.deleted = True
        return kept, self.prune_chain(keep_watermark)

    def _supersede(self, keep_watermark: int | None) -> int:
        """Push the current head onto the chain when a pinned snapshot
        may still need it — the one retention rule both the update and
        the delete path share.  Returns the number of versions kept."""
        if keep_watermark is None:
            return 0
        self.prev = RecordVersion(self.value, self.tid, self.deleted,
                                  self.prev)
        return 1

    # -- visibility (the snapshot read rule) ----------------------------

    def version_at(self, as_of_tid: int) -> tuple[dict[str, Any] | None, int]:
        """The row image visible at snapshot ``as_of_tid``.

        Returns ``(image, tid)`` where ``image`` is a copy of the
        newest version with ``tid <= as_of_tid`` (``None`` when that
        version is a tombstone or no version qualifies) and ``tid`` is
        the TID of the version that resolved the read (0 when none
        did).
        """
        if self.tid <= as_of_tid:
            return (None if self.deleted else dict(self.value)), self.tid
        node = self.prev
        while node is not None:
            if node.tid <= as_of_tid:
                return ((None if node.deleted else dict(node.value)),
                        node.tid)
            node = node.prev
        return None, 0

    def visible_at(self, as_of_tid: int) -> dict[str, Any] | None:
        """Just the image part of :meth:`version_at`."""
        return self.version_at(as_of_tid)[0]

    # -- watermark-driven GC --------------------------------------------

    def chain_length(self) -> int:
        """Number of superseded versions retained behind the head."""
        count = 0
        node = self.prev
        while node is not None:
            count += 1
            node = node.prev
        return count

    def prune_chain(self, watermark: int | None) -> int:
        """Drop chain versions no pinned snapshot can observe.

        Every pinned snapshot is at or above ``watermark`` (the minimum
        pinned snapshot TID), so only the newest version with ``tid <=
        watermark`` — or the head itself, if it qualifies — can still
        resolve a read; everything older is unreachable.  ``None``
        means no snapshot is pinned: the whole chain goes.  Returns the
        number of versions dropped.
        """
        if watermark is None or self.tid <= watermark:
            dropped = self.chain_length()
            self.prev = None
            return dropped
        node: Any = self
        while node.prev is not None:
            if node.prev.tid <= watermark:
                cut = node.prev.prev
                node.prev.prev = None
                dropped = 0
                while cut is not None:
                    dropped += 1
                    cut = cut.prev
                return dropped
            node = node.prev
        return 0

    def snapshot(self) -> dict[str, Any]:
        """A defensive copy of the committed row image."""
        return dict(self.value)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "deleted" if self.deleted else "live"
        return (f"VersionedRecord(key={self.key!r}, tid={self.tid}, "
                f"{state}, chain={self.chain_length()})")
