"""The pluggable versioned store and the per-database storage engine.

Two layers live here:

* :class:`Store` — the per-table record-map interface every
  :class:`~repro.relational.table.Table` delegates to, with the
  built-in :class:`VersionedStore` implementation (a primary-key dict
  of :class:`~repro.storage.record.VersionedRecord` version chains).
  Stores expose the snapshot visibility rule (:meth:`Store.
  latest_visible`) and watermark-driven GC (:meth:`Store.gc`); the
  :func:`register_store` / :func:`create_store` registry makes the
  engine a deployment-extensible choice, mirroring the CC scheme
  registry.

* :class:`StorageCoordinator` — one per database: the pinned-snapshot
  set of in-flight read-only roots (the source of the GC watermark
  install paths consult), the :class:`VersionStats` counters behind
  ``database.version_stats()``, and the optional snapshot-read audit
  log :func:`repro.formal.audit.certify_snapshot_isolation` certifies.

The coordinator is deliberately dumb about *when* snapshots pin: the
runtime pins at the first data operation of a snapshot-read root (see
``ReactorDatabase.begin_snapshot_session``) and unpins at root
completion, so ``keep_watermark()`` — the minimum pinned snapshot TID
— advances exactly with the in-flight set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.storage.record import VersionedRecord

Row = dict[str, Any]


class Store:
    """Interface of one table's committed record map.

    Keys are primary-key tuples; values are the per-key version-chain
    heads.  ``get`` resolves live records only; ``peek`` also returns
    tombstoned heads (snapshot readers resolve visibility themselves).
    """

    kind = "abstract"

    __slots__ = ()

    def get(self, pk: tuple) -> VersionedRecord | None:
        raise NotImplementedError

    def peek(self, pk: tuple) -> VersionedRecord | None:
        raise NotImplementedError

    def record_map(self) -> "dict[tuple, VersionedRecord] | None":
        """The raw pk → chain-head mapping when the store is
        dict-backed, else ``None``.

        An escape hatch for bulk read paths (vectorized point reads,
        scan candidate collection): one C-level dict probe per key
        instead of a Python :meth:`get` frame.  Entries include
        tombstoned heads — callers must skip ``record.deleted``
        themselves, exactly as :meth:`get` does.
        """
        return None

    def put(self, pk: tuple, record: VersionedRecord) -> None:
        raise NotImplementedError

    def pop(self, pk: tuple) -> None:
        raise NotImplementedError

    def iter_live(self) -> Iterator[VersionedRecord]:
        raise NotImplementedError

    def iter_all(self) -> Iterator[VersionedRecord]:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def note_chained(self, pk: tuple) -> None:
        """A record of ``pk`` just gained a chain version.

        Lets indexed snapshot scans examine only index candidates plus
        the (GC-bounded) chained set instead of the whole table.
        """

    def iter_chained(self) -> Iterator[VersionedRecord]:
        """Records that currently retain chain versions — the only
        ones whose snapshot-visible image can differ from (or outlive)
        their live head."""
        for record in self.iter_all():
            if record.prev is not None:
                yield record

    def version_at(self, pk: tuple,
                   as_of_tid: int) -> tuple[Row | None, int]:
        """The store-level visibility rule: the image of ``pk``
        visible at snapshot ``as_of_tid`` plus the TID of the version
        that resolved it (``(None, 0)`` when nothing qualifies)."""
        record = self.peek(pk)
        if record is None:
            return None, 0
        return record.version_at(as_of_tid)

    def latest_visible(self, pk: tuple, as_of_tid: int) -> Row | None:
        """Just the image part of :meth:`version_at`."""
        return self.version_at(pk, as_of_tid)[0]

    def gc(self, watermark: int | None) -> int:
        """Prune every chain below ``watermark`` (``None``: drop all
        history).  Returns the number of versions dropped."""
        dropped = 0
        for record in self.iter_all():
            dropped += record.prune_chain(watermark)
        return dropped

    def live_version_count(self) -> int:
        """Superseded versions currently retained across all chains."""
        return sum(r.chain_length() for r in self.iter_all())


class VersionedStore(Store):
    """The built-in dict-backed version-chain store."""

    kind = "versioned"

    __slots__ = ("_records", "_chained")

    def __init__(self) -> None:
        self._records: dict[tuple, VersionedRecord] = {}
        #: Primary keys whose record has (or recently had) chain
        #: versions; membership is validated lazily on iteration, so
        #: pruned chains fall out without an explicit unhook.
        self._chained: set[tuple] = set()

    def get(self, pk: tuple) -> VersionedRecord | None:
        record = self._records.get(pk)
        if record is None or record.deleted:
            return None
        return record

    def peek(self, pk: tuple) -> VersionedRecord | None:
        return self._records.get(pk)

    def record_map(self) -> dict[tuple, VersionedRecord]:
        return self._records

    def put(self, pk: tuple, record: VersionedRecord) -> None:
        self._records[pk] = record

    def pop(self, pk: tuple) -> None:
        self._records.pop(pk, None)

    def iter_live(self) -> Iterator[VersionedRecord]:
        for pk in sorted(self._records):
            record = self._records[pk]
            if not record.deleted:
                yield record

    def iter_all(self) -> Iterator[VersionedRecord]:
        for pk in sorted(self._records):
            yield self._records[pk]

    def note_chained(self, pk: tuple) -> None:
        self._chained.add(pk)

    def iter_chained(self) -> Iterator[VersionedRecord]:
        for pk in sorted(self._chained):
            record = self._records.get(pk)
            if record is None or record.prev is None:
                self._chained.discard(pk)
                continue
            yield record

    def __len__(self) -> int:
        return len(self._records)


# ----------------------------------------------------------------------
# Store registry (mirrors the CC scheme registry)
# ----------------------------------------------------------------------

_STORE_FACTORIES: dict[str, Callable[[], Store]] = {
    "versioned": VersionedStore,
}


def register_store(name: str):
    """Class/function decorator adding a store factory under ``name``."""
    def decorate(factory: Callable[[], Store]):
        _STORE_FACTORIES[name] = factory
        return factory
    return decorate


def store_kinds() -> tuple[str, ...]:
    return tuple(sorted(_STORE_FACTORIES))


def create_store(kind: str = "versioned") -> Store:
    """Instantiate the store ``kind`` for one table."""
    try:
        factory = _STORE_FACTORIES[kind]
    except KeyError:
        raise ValueError(
            f"unknown store kind {kind!r}; registered: "
            f"{', '.join(sorted(_STORE_FACTORIES))}"
        ) from None
    return factory()


# ----------------------------------------------------------------------
# Per-database storage engine state
# ----------------------------------------------------------------------

@dataclass(slots=True)
class VersionStats:
    """Counters behind ``database.version_stats()``."""

    #: superseded versions pushed onto chains (snapshot readers in
    #: flight at install time).
    versions_created: int = 0
    #: versions dropped by watermark-driven GC (install-time pruning
    #: plus explicit sweeps).
    versions_gced: int = 0
    #: read-only roots that pinned a snapshot.
    snapshot_roots: int = 0
    #: individual reads (point + scan rows) served from snapshots.
    snapshot_reads: int = 0
    #: read-only roots that aborted, keyed by cc scheme.  The mvocc
    #: contract is that this stays 0 for "mvocc": snapshot readers
    #: never validate and never conflict.
    read_only_aborts: dict[str, int] = field(default_factory=dict)


@dataclass(frozen=True, slots=True)
class SnapshotReadEvent:
    """One audited snapshot read (black-box certification input)."""

    txn_id: int
    snapshot_tid: int
    reactor: str
    table: str
    pk: tuple
    #: TID of the version that resolved the read (0: no version at or
    #: below the snapshot existed).
    observed_tid: int
    #: The read returned no row (tombstone or never-existed).
    missing: bool


class StorageCoordinator:
    """Pinned snapshots, GC watermark, and version counters of one
    database (primaries and replicas share one coordinator)."""

    __slots__ = ("pinned", "stats", "audit")

    def __init__(self) -> None:
        #: root txn id -> (pinned snapshot TID, scope).  Scope is
        #: ``None`` for primary-prefix snapshots and the serving
        #: replica container for replica-routed ones — a replica read
        #: can never touch primary tables (and vice versa), so each
        #: scope retains only history its own readers can reach.
        self.pinned: dict[int, tuple[int, Any]] = {}
        self.stats = VersionStats()
        #: Snapshot-read audit log; ``None`` until
        #: :meth:`enable_audit` (recording every read is test/bench
        #: instrumentation, not a production default).
        self.audit: list[SnapshotReadEvent] | None = None

    # -- table adoption -------------------------------------------------

    def adopt(self, reactor: Any, scope: Any = None) -> None:
        """Wire every table of ``reactor`` to this coordinator (called
        for bootstrap reactors, replica shadows, and migration
        successors alike).  ``scope`` matches the tables to the pins
        that can read them: ``None`` for primary tables, the owning
        replica container for replica shadows."""
        for table in reactor.catalog:
            table.versioning = self
            table.versioning_scope = scope

    # -- snapshot pinning ------------------------------------------------

    def pin(self, txn_id: int, snapshot_tid: int,
            scope: Any = None) -> None:
        self.pinned[txn_id] = (snapshot_tid, scope)
        self.stats.snapshot_roots += 1

    def unpin(self, txn_id: int) -> None:
        self.pinned.pop(txn_id, None)

    def rescope(self, old_scope: Any, new_scope: Any = None) -> None:
        """Move every pin in ``old_scope`` to ``new_scope``.

        Promotion re-homes a replica's tables into the primary scope;
        snapshot readers still in flight on that replica must follow,
        or installs on the promoted tables would GC versions those
        readers can still reach.
        """
        for txn_id, (tid, scope) in list(self.pinned.items()):
            if scope == old_scope:
                self.pinned[txn_id] = (tid, new_scope)

    def keep_watermark(self, scope: Any = None) -> int | None:
        """The GC watermark for one scope: the minimum snapshot TID
        pinned *in that scope*, or ``None`` when it has no in-flight
        snapshot reader (retain nothing there)."""
        if not self.pinned:
            return None
        tids = [tid for tid, pin_scope in self.pinned.values()
                if pin_scope == scope]
        if not tids:
            return None
        return min(tids)

    # -- counters and audit ----------------------------------------------

    def note_versions(self, created: int, pruned: int) -> None:
        if created:
            self.stats.versions_created += created
        if pruned:
            self.stats.versions_gced += pruned

    def note_read_only_abort(self, scheme: str) -> None:
        aborts = self.stats.read_only_aborts
        aborts[scheme] = aborts.get(scheme, 0) + 1

    def enable_audit(self) -> list[SnapshotReadEvent]:
        if self.audit is None:
            self.audit = []
        return self.audit

    def note_snapshot_read(self, txn_id: int, snapshot_tid: int,
                           reactor: str, table: str, pk: tuple,
                           observed_tid: int, missing: bool) -> None:
        self.stats.snapshot_reads += 1
        if self.audit is not None:
            self.audit.append(SnapshotReadEvent(
                txn_id=txn_id, snapshot_tid=snapshot_tid,
                reactor=reactor, table=table, pk=pk,
                observed_tid=observed_tid, missing=missing))
