"""Unified telemetry: deterministic tracing + a metrics registry.

One facade (:class:`~repro.telemetry.facade.Telemetry`, attached as
``db.telemetry``) fronts three pieces:

* a **span tracer** (:mod:`repro.telemetry.spans`) — sampled root
  transactions open a trace whose child spans cover scheduling waits,
  sub-calls, CC validate/install, 2PC, replication shipping, migration
  parking, and group-commit flush epochs, all stamped in virtual time
  (same seed, byte-identical trace);
* a **metrics registry** (:mod:`repro.telemetry.metrics`) — counters,
  gauges (including collector-backed gauges that read live state), and
  log-bucketed histograms, every name validated against the catalog
  (:mod:`repro.telemetry.catalog`);
* **exporters** (:mod:`repro.telemetry.export`) — Chrome trace-event
  JSON (Perfetto-loadable) and a Prometheus-style text snapshot.

Everything is driven by the virtual clock and allocates nothing when
disabled, so the simulator's determinism and hot-path speed survive.
"""

from repro.telemetry.config import TelemetryConfig
from repro.telemetry.facade import Telemetry
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.spans import Span, TraceHandle, Tracer

__all__ = ["Telemetry", "TelemetryConfig", "MetricsRegistry",
           "Tracer", "TraceHandle", "Span"]
