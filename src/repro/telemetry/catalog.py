"""The metric catalog: every registerable metric name, typed.

Registration validates against this table — a misspelled metric name
is a hard error at registration time, not a silently empty series —
and ``tools/check_trace.py`` lints exported snapshots against it, so
the catalog is the single source of truth for what this system can
report.

Kinds:

* ``counter`` — monotonically increasing event count, owned by the
  instrumented code (``inc``);
* ``gauge`` — a point-in-time level; most gauges here are
  *collector-backed* (a callable reads the live stat on demand), which
  is how the legacy ``stats_dict()`` surfaces migrate onto the
  registry without double bookkeeping;
* ``histogram`` — log-bucketed distribution reporting p50/p99/p999.
"""

from __future__ import annotations

COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"

#: name -> (kind, help).
CATALOG: dict[str, tuple[str, str]] = {
    # Root-transaction outcomes and latency distributions.
    "txn_commits_total":
        (COUNTER, "Root transactions reported committed."),
    "txn_aborts_total":
        (COUNTER, "Root transactions reported aborted."),
    "txn_commit_latency_us":
        (HISTOGRAM, "Submit-to-acknowledgement latency of committed "
                    "roots (virtual microseconds)."),
    "txn_abort_latency_us":
        (HISTOGRAM, "Submit-to-report latency of aborted roots "
                    "(virtual microseconds)."),
    # Concurrency control (merged across containers and replicas).
    "cc_validations_total":
        (GAUGE, "Commit-time validations attempted."),
    "cc_validation_failures_total":
        (GAUGE, "Validations that failed (OCC conflicts)."),
    "cc_aborts_total":
        (GAUGE, "Abort events by reason (label: reason)."),
    # Multi-version storage engine.
    "storage_live_versions":
        (GAUGE, "Superseded versions currently retained on chains."),
    "storage_versions_created_total":
        (GAUGE, "Versions created by installs."),
    "storage_versions_gced_total":
        (GAUGE, "Versions pruned by GC."),
    "storage_snapshot_roots_total":
        (GAUGE, "Read-only roots served from pinned snapshots."),
    "storage_snapshot_reads_total":
        (GAUGE, "Individual reads served from snapshots."),
    "storage_pinned_snapshots":
        (GAUGE, "Snapshots currently pinned by in-flight roots."),
    # Group-commit durability (label: container).
    "log_flush_records":
        (HISTOGRAM, "Records made durable per flush epoch."),
    "log_flush_bytes":
        (HISTOGRAM, "Bytes made durable per flush epoch."),
    "log_fsyncs_total":
        (GAUGE, "Fsyncs issued by a container's log device."),
    "log_records_flushed_total":
        (GAUGE, "Records made durable on a container."),
    "log_bytes_flushed_total":
        (GAUGE, "Bytes made durable on a container."),
    "log_early_flushes_total":
        (GAUGE, "Epochs flushed early on the batch-bytes threshold."),
    "log_device_busy_us":
        (GAUGE, "Virtual time a container's log device was busy."),
    "log_durable_tid":
        (GAUGE, "Highest commit TID known durable on a container."),
    "log_unflushed_records":
        (GAUGE, "Appended records not yet durable (crash-loss "
                "window)."),
    "durability_acked_commits_total":
        (GAUGE, "Commits acknowledged to clients."),
    "durability_checkpoints_total":
        (GAUGE, "Checkpoints taken."),
    "durability_checkpoint_segments":
        (GAUGE, "Segments in the live checkpoint manifest."),
    "durability_records_truncated_total":
        (GAUGE, "WAL records truncated below checkpoints."),
    # Replication.
    "replication_lag_us":
        (HISTOGRAM, "Commit-to-replica-apply lag of shipped records "
                    "(virtual microseconds)."),
    "replication_records_shipped_total":
        (GAUGE, "Redo records entered into the ship channels."),
    "replication_records_applied_total":
        (GAUGE, "Redo records applied on replicas."),
    "replication_acked_records_total":
        (GAUGE, "Records acknowledged by all replicas (sync)."),
    "replication_sync_commit_waits_total":
        (GAUGE, "Commits that waited on a sync replica ack."),
    "replication_sync_ack_wait_us":
        (GAUGE, "Total virtual time spent in sync ack waits."),
    "replication_max_lag_us":
        (GAUGE, "Maximum observed replica apply lag."),
    "replication_reads_routed_total":
        (GAUGE, "Read-only roots routed to replica shadows."),
    "replication_failover_aborts_total":
        (GAUGE, "Roots/commits aborted because a container failed."),
    # Online migration.
    "migration_started_total": (GAUGE, "Migrations started."),
    "migration_completed_total": (GAUGE, "Migrations completed."),
    "migration_cancelled_total": (GAUGE, "Migrations cancelled."),
    "migration_rows_copied_total":
        (GAUGE, "Rows copied by completed migrations."),
    "migration_roots_parked_total":
        (GAUGE, "Root invocations parked during migrations."),
    "migration_subcalls_parked_total":
        (GAUGE, "Sub-calls parked during migrations."),
    "migration_rebalance_checks_total":
        (GAUGE, "Elastic rebalance checks run."),
    "migration_rebalance_moves_total":
        (GAUGE, "Migrations started by the rebalancer."),
    # Runtime levels (label: core).
    "executor_queue_depth":
        (GAUGE, "Requests waiting in an executor's queue."),
    "executor_requests_total":
        (GAUGE, "Requests an executor has served."),
    "executor_busy_us":
        (GAUGE, "Cumulative busy virtual time of an executor core."),
    "scheduler_events_dispatched_total":
        (GAUGE, "Discrete events the simulation has dispatched."),
    "scheduler_pending_events":
        (GAUGE, "Events currently queued in the simulation heap."),
    # Networked serving layer (repro.serving).
    "serving_accepted_total":
        (COUNTER, "Wire requests admitted and submitted."),
    "serving_shed_total":
        (COUNTER, "Wire requests shed by admission control "
                  "(answered with a typed overloaded error)."),
    "serving_inflight":
        (GAUGE, "Requests admitted but not yet answered."),
    "serving_connections_total":
        (COUNTER, "TCP connections accepted by the server."),
    "serving_sessions_total":
        (COUNTER, "Distinct logical sessions seen on connections."),
    "serving_wire_latency_us":
        (HISTOGRAM, "Receive-to-response wall latency of served "
                    "requests (microseconds)."),
    # Chaos campaigns (repro.chaos; campaign-level registry).
    "chaos_episodes_total":
        (COUNTER, "Chaos episodes run by a campaign."),
    "chaos_episode_failures_total":
        (COUNTER, "Episodes that failed certification or liveness."),
    "chaos_faults_injected_total":
        (COUNTER, "Fault actions applied (label: kind)."),
    "chaos_faults_skipped_total":
        (COUNTER, "Fault actions skipped — preconditions no longer "
                  "held at fire time (label: kind)."),
    "chaos_shrink_episodes_total":
        (COUNTER, "Episodes re-run by the delta-debugging shrinker."),
    "chaos_repro_files_total":
        (COUNTER, "Minimized repro files produced by a campaign."),
}


def kind_of(name: str) -> str | None:
    entry = CATALOG.get(name)
    return entry[0] if entry else None


def help_of(name: str) -> str:
    entry = CATALOG.get(name)
    return entry[1] if entry else ""


__all__ = ["CATALOG", "COUNTER", "GAUGE", "HISTOGRAM", "kind_of",
           "help_of"]
