"""Telemetry configuration: the sampling/off switches.

Telemetry must never cost more than it informs: the metrics registry
is cheap enough to stay on by default, while span tracing is *sampled*
(one root in ``trace_sample``) so the wall-clock harness-speed gate
keeps passing.  Diagnostics flip to full-fidelity tracing
(``trace_sample=1`` plus the system tracks) without touching code.

Environment overrides (read when a config is constructed, so a plain
``DeploymentConfig()`` picks them up):

* ``REPRO_TELEMETRY=0`` — master off switch: no spans are allocated
  and every metric observation early-returns;
* ``REPRO_TRACE=off`` / ``REPRO_TRACE=<N>`` / ``REPRO_TRACE=all`` —
  root-trace sampling: disabled, one-in-N, or every root plus the
  system tracks (log flushes, replication ships, migration phases).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any

#: Default root-trace sampling: one traced root in this many.
DEFAULT_TRACE_SAMPLE = 64


def _env_enabled() -> bool:
    return os.environ.get("REPRO_TELEMETRY", "1").strip().lower() \
        not in ("0", "false", "no", "off")


def _env_trace_sample() -> int:
    raw = os.environ.get("REPRO_TRACE", "").strip().lower()
    if raw in ("", "default"):
        return DEFAULT_TRACE_SAMPLE
    if raw in ("0", "off", "none", "no"):
        return 0
    if raw in ("all", "full", "1"):
        return 1
    try:
        return max(0, int(raw))
    except ValueError:
        return DEFAULT_TRACE_SAMPLE


def _env_trace_system() -> bool:
    return os.environ.get("REPRO_TRACE", "").strip().lower() \
        in ("all", "full")


@dataclass
class TelemetryConfig:
    """One database's telemetry switches."""

    #: Master switch: ``False`` turns the whole subsystem into no-ops
    #: (no spans allocated, histogram observes early-return).
    enabled: bool = field(default_factory=_env_enabled)
    #: Root-trace sampling: 0 = tracing off, 1 = every root, N = one
    #: root in N (selected deterministically by ``txn_id % N``).
    trace_sample: int = field(default_factory=_env_trace_sample)
    #: Record the system tracks too (per-container log flush epochs,
    #: replication ship→apply, migration phases).  Off by default:
    #: system spans accrue per *event*, not per sampled root.
    trace_system: bool = field(default_factory=_env_trace_system)

    def __post_init__(self) -> None:
        self.trace_sample = max(0, int(self.trace_sample))

    @property
    def tracing(self) -> bool:
        """Is any root-span tracing active?"""
        return self.enabled and self.trace_sample > 0

    # -- serialization --------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "enabled": self.enabled,
            "trace_sample": self.trace_sample,
            "trace_system": self.trace_system,
        }

    @staticmethod
    def from_dict(data: dict[str, Any]) -> "TelemetryConfig":
        config = TelemetryConfig()
        if "enabled" in data:
            config.enabled = bool(data["enabled"])
        if "trace_sample" in data:
            config.trace_sample = max(0, int(data["trace_sample"]))
        if "trace_system" in data:
            config.trace_system = bool(data["trace_system"])
        return config


def full_tracing() -> TelemetryConfig:
    """Every root traced plus the system tracks — what the trace
    exporter and the determinism tests run under."""
    return TelemetryConfig(enabled=True, trace_sample=1,
                           trace_system=True)


__all__ = ["TelemetryConfig", "full_tracing", "DEFAULT_TRACE_SAMPLE"]
