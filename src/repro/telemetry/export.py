"""Exporters: Chrome trace-event JSON and Prometheus-style text.

The Chrome format (loadable at https://ui.perfetto.dev) gets one
process per track — transactions, per-container log devices,
replication, migration — with a thread per root transaction (or
container/replica).  Virtual-clock microseconds map directly onto the
format's ``ts``/``dur`` microsecond fields, so what Perfetto renders
*is* simulated time.

Exports are deterministic: events are sorted by ``(ts, span id)``,
dictionaries are serialized with sorted keys, and nothing
non-deterministic (wall time, object ids) enters the payload — the
determinism tests byte-compare two seeded runs.
"""

from __future__ import annotations

import json
from typing import Any

from repro.telemetry.spans import (
    TRACK_LOG,
    TRACK_MIGRATION,
    TRACK_REPLICATION,
    TRACK_SERVING,
    TRACK_TXN,
    Tracer,
)

#: Stable Chrome pid per track.
TRACK_PIDS = {
    TRACK_TXN: 1,
    TRACK_LOG: 2,
    TRACK_REPLICATION: 3,
    TRACK_MIGRATION: 4,
    TRACK_SERVING: 5,
}

TRACK_LABELS = {
    TRACK_TXN: "transactions",
    TRACK_LOG: "log devices",
    TRACK_REPLICATION: "replication",
    TRACK_MIGRATION: "migration",
    TRACK_SERVING: "serving",
}


def trace_events(tracer: Tracer) -> list[dict[str, Any]]:
    """The tracer's spans as Chrome trace events (complete events,
    ``ph: "X"``), preceded by process-name metadata."""
    used_tracks = {span.track for span in tracer.spans}
    events: list[dict[str, Any]] = []
    for track in sorted(used_tracks, key=TRACK_PIDS.__getitem__):
        events.append({
            "name": "process_name",
            "ph": "M",
            "pid": TRACK_PIDS[track],
            "tid": 0,
            "args": {"name": TRACK_LABELS[track]},
        })
    spans = sorted(tracer.spans,
                   key=lambda s: (s.start, s.span_id))
    for span in spans:
        args: dict[str, Any] = {"span_id": span.span_id}
        if span.parent_id:
            args["parent_span_id"] = span.parent_id
        if span.args:
            args.update(span.args)
        events.append({
            "name": span.name,
            "cat": span.track,
            "ph": "X",
            "ts": round(span.start, 3),
            "dur": round(span.end - span.start, 3),
            "pid": TRACK_PIDS[span.track],
            "tid": span.tid,
            "args": args,
        })
    return events


def chrome_payload(telemetry: Any) -> dict[str, Any]:
    """The full export: trace events plus a metrics snapshot.

    ``metadata.backend`` records which execution backend produced the
    spans; timestamps are virtual microseconds on ``sim`` and
    wall-clock microseconds (since backend start) on ``threads``, as
    ``metadata.clock`` states.
    """
    tracer = telemetry.tracer
    events = trace_events(tracer) if tracer is not None else []
    scheduler = getattr(telemetry.database, "scheduler", None)
    backend = getattr(scheduler, "name", "sim")
    virtual = getattr(scheduler, "is_virtual", True)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "metadata": {
            "backend": backend,
            "clock": ("virtual-microseconds" if virtual
                      else "wall-microseconds"),
            "dropped_spans": tracer.dropped if tracer else 0,
            "trace_sample": telemetry.config.trace_sample,
        },
        "metrics": telemetry.metrics_snapshot(),
    }


def to_json(payload: dict[str, Any]) -> str:
    """Deterministic serialization (sorted keys, fixed separators)."""
    return json.dumps(payload, indent=1, sort_keys=True) + "\n"


__all__ = ["trace_events", "chrome_payload", "to_json", "TRACK_PIDS"]
