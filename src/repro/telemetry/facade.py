"""The ``db.telemetry`` facade: one object owning the registry and
tracer of a database.

The facade is created *before* the database builds its containers, so
every manager can register its collectors during construction; the
database calls :meth:`Telemetry.attach_collectors` at the end of
``_build`` for the core surfaces (CC, storage, executors, scheduler).
All collector registration is idempotent — replication promotion and
log replacement just re-register and the gauges re-point.

Hot-path contract: when telemetry is disabled nothing is allocated —
roots carry ``trace = None``, :meth:`note_root_done` early-returns,
and the collector gauges (pure pull) cost nothing until read.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.telemetry import export as _export
from repro.telemetry.config import TelemetryConfig
from repro.telemetry.metrics import Histogram, MetricsRegistry
from repro.telemetry.spans import TraceHandle, Tracer

#: Abort reasons, in the legacy ``abort_counts()["by_reason"]`` order
#: (mirrors :meth:`repro.concurrency.base.CCStats.abort_reasons`).
ABORT_REASONS = ("validation_failure", "lock_conflict",
                 "deadlock_avoidance", "wound", "user",
                 "dangerous_structure")


class Telemetry:
    """One database's metrics registry, span tracer and exporters."""

    __slots__ = ("database", "config", "registry", "tracer", "enabled",
                 "_sample", "_commits", "_aborts", "_commit_hist",
                 "_abort_hist")

    def __init__(self, database: Any, config: TelemetryConfig) -> None:
        self.database = database
        self.config = config
        self.enabled = config.enabled
        self.registry = MetricsRegistry()
        self._sample = config.trace_sample if config.tracing else 0
        self.tracer: Tracer | None = (
            Tracer(system=config.trace_system) if self._sample else None)
        registry = self.registry
        if self.enabled:
            self._commits = registry.counter("txn_commits_total")
            self._aborts = registry.counter("txn_aborts_total")
            self._commit_hist = registry.histogram(
                "txn_commit_latency_us")
            self._abort_hist = registry.histogram("txn_abort_latency_us")
        else:
            self._commits = self._aborts = None
            self._commit_hist = self._abort_hist = None

    # -- root tracing ---------------------------------------------------

    def trace_root(self, root: Any, now: float) -> TraceHandle | None:
        """Open a trace for a sampled root (``txn_id % sample == 0``;
        deterministic, no RNG) and start its scheduling child span.
        Returns the handle or ``None`` (the common case)."""
        sample = self._sample
        if not sample or root.txn_id % sample:
            return None
        handle = TraceHandle(self.tracer, root.txn_id, now, {
            "procedure": root.procedure,
            "reactor": root.reactor_name,
        })
        handle.open_child("sched", "scheduling", now)
        root.trace = handle
        return handle

    def note_root_done(self, root: Any, committed: bool,
                       reason: str | None, now: float) -> None:
        """The single completion hook: every path that reports a root
        done (normal completion, failed-container refusal, failover
        drain, migration replay onto a dead container) lands here."""
        if self.enabled:
            latency = now - root.start_time
            if committed:
                self._commits.inc()
                self._commit_hist.observe(latency)
            else:
                self._aborts.inc()
                self._abort_hist.observe(latency)
        trace = root.trace
        if trace is not None:
            trace.close_child("commit", now)
            trace.finish(now, {"committed": committed,
                               "reason": reason})
            root.trace = None

    # -- system tracks --------------------------------------------------

    @property
    def system_tracing(self) -> bool:
        """Are per-event system-track spans (log flush epochs,
        replication ships, migration phases) being recorded?"""
        tracer = self.tracer
        return tracer is not None and tracer.system

    def system_span(self, name: str, track: str, tid: int,
                    start: float, end: float,
                    args: dict[str, Any] | None = None) -> None:
        tracer = self.tracer
        if tracer is not None and tracer.system:
            tracer.emit(name, track, tid, start, end, tracer.new_id(),
                        0, args)

    def histogram(self, name: str, **labels: Any) -> Histogram | None:
        """A histogram handle for hot-path observes, or ``None`` when
        telemetry is disabled (callers keep the ``None`` and skip)."""
        if not self.enabled:
            return None
        return self.registry.histogram(name, **labels)

    # -- collectors -----------------------------------------------------

    def merged_cc_stats(self) -> Any:
        """CC stats merged across primaries and replica shadows (reads
        ``database.containers`` live, so promotion — which swaps
        containers and merges stats into the target — stays exact)."""
        from repro.concurrency.base import CCStats
        merged = CCStats()
        database = self.database
        for container in database.containers:
            merged.merge(container.concurrency.stats)
        replication = database.replication
        if replication is not None:
            for group in replication.replicas.values():
                for replica in group:
                    merged.merge(replica.concurrency.stats)
        return merged

    def attach_collectors(self) -> None:
        """Register the core collector-backed gauges (CC, storage,
        executors, scheduler).  Called at the end of the database
        build; safe to call again."""
        registry = self.registry
        database = self.database
        merged = self.merged_cc_stats
        registry.gauge_fn("cc_validations_total",
                          lambda: merged().validations)
        registry.gauge_fn("cc_validation_failures_total",
                          lambda: merged().validation_failures)
        for reason in ABORT_REASONS:
            registry.gauge_fn(
                "cc_aborts_total",
                (lambda r=reason: merged().abort_reasons()[r]),
                reason=reason)
        storage = database.storage
        registry.gauge_fn(
            "storage_live_versions",
            lambda: sum(t.live_version_count()
                        for t in database._all_tables()))
        registry.gauge_fn("storage_versions_created_total",
                          lambda: storage.stats.versions_created)
        registry.gauge_fn("storage_versions_gced_total",
                          lambda: storage.stats.versions_gced)
        registry.gauge_fn("storage_snapshot_roots_total",
                          lambda: storage.stats.snapshot_roots)
        registry.gauge_fn("storage_snapshot_reads_total",
                          lambda: storage.stats.snapshot_reads)
        registry.gauge_fn("storage_pinned_snapshots",
                          lambda: len(storage.pinned))
        scheduler = database.scheduler
        registry.gauge_fn("scheduler_events_dispatched_total",
                          lambda: scheduler.events_dispatched)
        registry.gauge_fn("scheduler_pending_events", scheduler.pending)
        for executor in database.executors:
            core = executor.core_id
            registry.gauge_fn("executor_queue_depth",
                              (lambda e=executor: len(e.queue)),
                              core=core)
            registry.gauge_fn("executor_requests_total",
                              (lambda e=executor: e.requests_served),
                              core=core)
            registry.gauge_fn("executor_busy_us",
                              (lambda e=executor: round(e.busy_time, 3)),
                              core=core)

    def register_flusher(self, flusher: Any) -> None:
        """Per-container log-device gauges.  Re-registered when a
        promotion replaces a container's log (same label, new
        flusher)."""
        registry = self.registry
        cid = flusher.container_id

        def field(getter: Callable[[Any], Any]) -> Callable[[], Any]:
            return lambda: getter(flusher)

        registry.gauge_fn("log_fsyncs_total",
                          field(lambda f: f.stats.fsyncs),
                          container=cid)
        registry.gauge_fn("log_records_flushed_total",
                          field(lambda f: f.stats.records_flushed),
                          container=cid)
        registry.gauge_fn("log_bytes_flushed_total",
                          field(lambda f: f.stats.bytes_flushed),
                          container=cid)
        registry.gauge_fn("log_early_flushes_total",
                          field(lambda f: f.stats.early_flushes),
                          container=cid)
        registry.gauge_fn("log_device_busy_us",
                          field(lambda f: round(f.stats.device_busy_us,
                                                3)),
                          container=cid)
        registry.gauge_fn("log_durable_tid",
                          field(lambda f: f.durable_tid),
                          container=cid)
        registry.gauge_fn("log_unflushed_records",
                          field(lambda f: f.unflushed_records()),
                          container=cid)

    def register_durability(self, manager: Any) -> None:
        registry = self.registry
        registry.gauge_fn("durability_acked_commits_total",
                          lambda: manager.acked_count)
        registry.gauge_fn("durability_checkpoints_total",
                          lambda: manager.checkpoints_taken)
        registry.gauge_fn("durability_checkpoint_segments",
                          lambda: len(manager.manifest.segments))
        registry.gauge_fn("durability_records_truncated_total",
                          lambda: manager.records_truncated)

    def register_replication(self, manager: Any) -> None:
        registry = self.registry
        stats = manager.stats
        registry.gauge_fn("replication_records_shipped_total",
                          lambda: stats.records_shipped)
        registry.gauge_fn("replication_records_applied_total",
                          lambda: stats.records_applied)
        registry.gauge_fn("replication_acked_records_total",
                          lambda: stats.acked_records)
        registry.gauge_fn("replication_sync_commit_waits_total",
                          lambda: stats.sync_commit_waits)
        registry.gauge_fn("replication_sync_ack_wait_us",
                          lambda: round(stats.sync_ack_wait_us, 3))
        registry.gauge_fn("replication_max_lag_us",
                          lambda: round(stats.max_lag_us, 3))
        registry.gauge_fn("replication_reads_routed_total",
                          lambda: stats.reads_routed_to_replicas)
        registry.gauge_fn("replication_failover_aborts_total",
                          lambda: stats.failover_aborts)

    def register_migration(self, manager: Any) -> None:
        registry = self.registry
        stats = manager.stats
        registry.gauge_fn("migration_started_total",
                          lambda: stats.started)
        registry.gauge_fn("migration_completed_total",
                          lambda: stats.completed)
        registry.gauge_fn("migration_cancelled_total",
                          lambda: stats.cancelled)
        registry.gauge_fn("migration_rows_copied_total",
                          lambda: stats.rows_copied)
        registry.gauge_fn("migration_roots_parked_total",
                          lambda: stats.roots_parked)
        registry.gauge_fn("migration_subcalls_parked_total",
                          lambda: stats.subcalls_parked)
        registry.gauge_fn("migration_rebalance_checks_total",
                          lambda: stats.rebalance_checks)
        registry.gauge_fn("migration_rebalance_moves_total",
                          lambda: stats.rebalance_moves)

    # -- exports --------------------------------------------------------

    def metrics_snapshot(self) -> dict[str, Any]:
        return self.registry.snapshot()

    def render_prometheus(self) -> str:
        return self.registry.render_prometheus()

    def export_chrome(self) -> dict[str, Any]:
        """Chrome trace-event payload (Perfetto-loadable) with the
        metrics snapshot riding along."""
        return _export.chrome_payload(self)

    def export_chrome_json(self) -> str:
        return _export.to_json(self.export_chrome())

    def bench_summary(self) -> dict[str, Any]:
        """The compact per-measurement block benchmark JSONs embed:
        outcome counts plus the latency/flush/lag percentile
        summaries that have observations."""
        if not self.enabled:
            return {}
        out: dict[str, Any] = {
            "commits": self._commits.value,
            "aborts": self._aborts.value,
        }
        for name, histogram in (
                ("txn_commit_latency_us", self._commit_hist),
                ("txn_abort_latency_us", self._abort_hist)):
            if histogram.count:
                out[name] = histogram.summary()
        for name in ("log_flush_records", "log_flush_bytes",
                     "replication_lag_us"):
            value = self.registry.value(name)
            if isinstance(value, dict) and value.get("count"):
                out[name] = value
        return out


__all__ = ["Telemetry", "ABORT_REASONS"]
