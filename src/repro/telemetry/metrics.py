"""Counters, gauges, and log-bucketed histograms with a registry.

The registry is the substrate the legacy ``stats_dict()`` surfaces
migrate onto: instrumented code owns counters and histograms directly
(hot-path observes are one ``bisect`` plus two adds), while existing
per-manager stat objects are exposed through *collector-backed gauges*
— a callable registered once that reads the live value on demand, so
no state is double-booked and promotion/failover (which swaps the
underlying objects) just re-registers the collector.

Histogram buckets are fixed log-spaced powers of two covering 1 µs to
~17 minutes of virtual time, so percentile reports are deterministic
functions of the observation multiset (quantiles resolve to bucket
upper bounds; the exact min/max/sum ride along).
"""

from __future__ import annotations

from bisect import bisect_left
from math import ceil
from typing import Any, Callable

from repro.errors import SimulationError
from repro.telemetry.catalog import CATALOG, COUNTER, GAUGE, HISTOGRAM

#: Fixed log-spaced bucket upper bounds (microseconds): 2^0 .. 2^30.
BUCKET_BOUNDS: tuple[float, ...] = tuple(
    float(1 << exp) for exp in range(31))

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, Any]) -> LabelKey:
    if not labels:
        return ()
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("name", "labels", "value")

    kind = COUNTER

    def __init__(self, name: str, labels: LabelKey) -> None:
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def current(self) -> int:
        return self.value


class Gauge:
    """A point-in-time level; optionally collector-backed."""

    __slots__ = ("name", "labels", "value", "fn")

    kind = GAUGE

    def __init__(self, name: str, labels: LabelKey,
                 fn: Callable[[], Any] | None = None) -> None:
        self.name = name
        self.labels = labels
        self.value: float = 0
        self.fn = fn

    def set(self, value: float) -> None:
        self.value = value

    def current(self) -> float:
        if self.fn is not None:
            return self.fn()
        return self.value


class Histogram:
    """Log-bucketed distribution with exact count/sum/min/max."""

    __slots__ = ("name", "labels", "buckets", "count", "total",
                 "min", "max")

    kind = HISTOGRAM

    def __init__(self, name: str, labels: LabelKey) -> None:
        self.name = name
        self.labels = labels
        #: one slot per bound plus the overflow bucket.
        self.buckets = [0] * (len(BUCKET_BOUNDS) + 1)
        self.count = 0
        self.total = 0.0
        self.min = 0.0
        self.max = 0.0

    def observe(self, value: float) -> None:
        if self.count == 0 or value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.count += 1
        self.total += value
        self.buckets[bisect_left(BUCKET_BOUNDS, value)] += 1

    def percentile(self, q: float) -> float:
        """Nearest-rank quantile resolved to its bucket upper bound
        (deterministic; the top bucket reports the exact max)."""
        if self.count == 0:
            return 0.0
        rank = min(self.count, max(1, ceil(q * self.count)))
        seen = 0
        for index, bucket_count in enumerate(self.buckets):
            seen += bucket_count
            if seen >= rank:
                if index >= len(BUCKET_BOUNDS):
                    return self.max
                return min(BUCKET_BOUNDS[index], self.max)
        return self.max  # pragma: no cover - rank <= count always hits

    def summary(self) -> dict[str, float]:
        return {
            "count": self.count,
            "sum": round(self.total, 3),
            "min": round(self.min, 3),
            "max": round(self.max, 3),
            "p50": round(self.percentile(0.50), 3),
            "p99": round(self.percentile(0.99), 3),
            "p999": round(self.percentile(0.999), 3),
        }

    def current(self) -> dict[str, float]:
        return self.summary()


class MetricsRegistry:
    """All metrics of one database, keyed by (name, labels)."""

    __slots__ = ("_metrics",)

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, LabelKey], Any] = {}

    # -- registration ---------------------------------------------------

    def _get(self, name: str, kind: str, labels: dict[str, Any],
             factory) -> Any:
        cataloged = CATALOG.get(name)
        if cataloged is None:
            raise SimulationError(
                f"metric {name!r} is not in the telemetry catalog "
                f"(repro.telemetry.catalog)")
        if cataloged[0] != kind:
            raise SimulationError(
                f"metric {name!r} is a {cataloged[0]}, not a {kind}")
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = self._metrics[key] = factory(name, key[1])
        return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get(name, COUNTER, labels, Counter)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get(name, GAUGE, labels, Gauge)

    def histogram(self, name: str, **labels: Any) -> Histogram:
        return self._get(name, HISTOGRAM, labels, Histogram)

    def gauge_fn(self, name: str, fn: Callable[[], Any],
                 **labels: Any) -> Gauge:
        """Register (or re-point — registration is idempotent, which
        failover/promotion relies on) a collector-backed gauge."""
        gauge = self._get(name, GAUGE, labels, Gauge)
        gauge.fn = fn
        return gauge

    # -- reading --------------------------------------------------------

    def value(self, name: str, **labels: Any) -> Any:
        """The current value of one metric; 0 when never registered."""
        metric = self._metrics.get((name, _label_key(labels)))
        if metric is None:
            return 0
        return metric.current()

    def snapshot(self) -> dict[str, Any]:
        """Every metric's current value, keyed by
        ``name{label="v",...}`` (histograms as summary dicts)."""
        out: dict[str, Any] = {}
        for (name, labels), metric in sorted(self._metrics.items()):
            if labels:
                rendered = ",".join(f'{k}="{v}"' for k, v in labels)
                key = f"{name}{{{rendered}}}"
            else:
                key = name
            out[key] = metric.current()
        return out

    def render_prometheus(self) -> str:
        """Prometheus text-exposition snapshot of every metric."""
        by_name: dict[str, list[tuple[LabelKey, Any]]] = {}
        for (name, labels), metric in self._metrics.items():
            by_name.setdefault(name, []).append((labels, metric))
        lines: list[str] = []
        for name in sorted(by_name):
            kind, help_text = CATALOG[name]
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} "
                         f"{'summary' if kind == HISTOGRAM else kind}")
            for labels, metric in sorted(by_name[name],
                                         key=lambda pair: pair[0]):
                rendered = ",".join(f'{k}="{v}"' for k, v in labels)
                if kind == HISTOGRAM:
                    summary = metric.summary()
                    for quantile in ("p50", "p99", "p999"):
                        q_labels = rendered + ("," if rendered else "") \
                            + f'quantile="{quantile[1:]}"'
                        lines.append(f"{name}{{{q_labels}}} "
                                     f"{summary[quantile]}")
                    suffix = f"{{{rendered}}}" if rendered else ""
                    lines.append(f"{name}_sum{suffix} "
                                 f"{summary['sum']}")
                    lines.append(f"{name}_count{suffix} "
                                 f"{summary['count']}")
                else:
                    suffix = f"{{{rendered}}}" if rendered else ""
                    lines.append(f"{name}{suffix} {metric.current()}")
        return "\n".join(lines) + "\n"


__all__ = ["MetricsRegistry", "Counter", "Gauge", "Histogram",
           "BUCKET_BOUNDS"]
