"""The span tracer: virtual-clock spans over root transactions.

A sampled root transaction opens a :class:`TraceHandle`; the runtime
marks child spans on it (scheduling wait, blocks, sub-calls, commit,
CC/2PC phases, ack waits, migration parking) and the handle emits
finished :class:`Span` records into the database's single
:class:`Tracer`.  System components (log flushers, replication,
migration) emit spans on their own tracks when system tracing is on.

Everything is deterministic: span ids are a per-tracer sequence,
timestamps are the virtual clock, and no telemetry code ever schedules
an event or consumes randomness — a given seed yields a byte-identical
exported trace, including across the batched and reference commit
engines (the commit-phase spans are synthesized from the same
per-participant order both engines share).

Spans an aborted path never closes are simply not emitted (the trace
stays a well-formed tree); a trace is *finished* exactly once, at the
root's completion report.
"""

from __future__ import annotations

from typing import Any

#: Track names the exporter maps to Chrome trace-event pids.
TRACK_TXN = "txn"
TRACK_LOG = "log"
TRACK_REPLICATION = "replication"
TRACK_MIGRATION = "migration"
TRACK_SERVING = "serving"


class Span:
    """One finished span, ready for export."""

    __slots__ = ("name", "track", "tid", "start", "end", "span_id",
                 "parent_id", "args")

    def __init__(self, name: str, track: str, tid: int, start: float,
                 end: float, span_id: int, parent_id: int,
                 args: dict[str, Any] | None) -> None:
        self.name = name
        self.track = track
        self.tid = tid
        self.start = start
        self.end = end
        self.span_id = span_id
        self.parent_id = parent_id
        self.args = args


class Tracer:
    """The database-wide sink of finished spans."""

    __slots__ = ("spans", "system", "max_spans", "dropped", "_next_id")

    def __init__(self, system: bool = False,
                 max_spans: int = 1_000_000) -> None:
        self.spans: list[Span] = []
        #: Record system-track spans (log/replication/migration)?
        self.system = system
        #: Bound on retained spans: beyond it spans are counted as
        #: dropped instead of growing memory without limit.
        self.max_spans = max_spans
        self.dropped = 0
        self._next_id = 0

    def new_id(self) -> int:
        self._next_id += 1
        return self._next_id

    def emit(self, name: str, track: str, tid: int, start: float,
             end: float, span_id: int, parent_id: int = 0,
             args: dict[str, Any] | None = None) -> None:
        if len(self.spans) >= self.max_spans:
            self.dropped += 1
            return
        self.spans.append(Span(name, track, tid, start, end, span_id,
                               parent_id, args))

    def system_span(self, name: str, track: str, tid: int,
                    start: float, end: float,
                    args: dict[str, Any] | None = None) -> None:
        """A span on a system track; no-op unless system tracing is
        on (callers guard on ``tracer.system`` for zero-cost skips)."""
        if self.system:
            self.emit(name, track, tid, start, end, self.new_id(),
                      0, args)


class TraceHandle:
    """One sampled root transaction's trace under construction."""

    __slots__ = ("tracer", "txn_id", "root_id", "root_start",
                 "root_args", "_open", "finished")

    def __init__(self, tracer: Tracer, txn_id: int, start: float,
                 args: dict[str, Any]) -> None:
        self.tracer = tracer
        self.txn_id = txn_id
        self.root_id = tracer.new_id()
        self.root_start = start
        self.root_args = args
        #: open child spans: key -> (span_id, name, start, args).
        self._open: dict[Any, tuple[int, str, float,
                                    dict[str, Any] | None]] = {}
        self.finished = False

    # -- children -------------------------------------------------------

    def open_child(self, key: Any, name: str, start: float,
                   args: dict[str, Any] | None = None) -> int:
        """Start a child span; ``key`` identifies it for
        :meth:`close_child` (subtxn id, frame, or a string for
        singleton phases).  Returns the span id (usable as a parent
        for nested spans)."""
        span_id = self.tracer.new_id()
        self._open[key] = (span_id, name, start, args)
        return span_id

    def close_child(self, key: Any, end: float,
                    extra: dict[str, Any] | None = None) -> None:
        entry = self._open.pop(key, None)
        if entry is None:
            return
        span_id, name, start, args = entry
        if extra:
            args = {**(args or {}), **extra}
        self.tracer.emit(name, TRACK_TXN, self.txn_id, start, end,
                         span_id, self.root_id, args)

    def span(self, name: str, start: float, end: float,
             args: dict[str, Any] | None = None,
             parent_key: Any = None) -> None:
        """A complete child span whose start and end are both known."""
        parent_id = self.root_id
        if parent_key is not None:
            entry = self._open.get(parent_key)
            if entry is not None:
                parent_id = entry[0]
        self.tracer.emit(name, TRACK_TXN, self.txn_id, start, end,
                         self.tracer.new_id(), parent_id, args)

    def instant(self, name: str, ts: float,
                args: dict[str, Any] | None = None,
                parent_key: Any = None) -> None:
        """A zero-duration marker (CC/2PC phase points)."""
        self.span(name, ts, ts, args, parent_key=parent_key)

    # -- completion -----------------------------------------------------

    def finish(self, end: float,
               extra: dict[str, Any] | None = None) -> None:
        """Emit the root span; open children are discarded (they never
        happened to completion on this trace)."""
        if self.finished:
            return
        self.finished = True
        self._open.clear()
        args = self.root_args
        if extra:
            args = {**args, **extra}
        self.tracer.emit("txn", TRACK_TXN, self.txn_id,
                         self.root_start, end, self.root_id, 0, args)


__all__ = ["Span", "Tracer", "TraceHandle", "TRACK_TXN", "TRACK_LOG",
           "TRACK_REPLICATION", "TRACK_MIGRATION", "TRACK_SERVING"]
