"""Benchmark workloads expressed in the reactor programming model.

* :mod:`repro.workloads.smallbank` — extended Smallbank with the
  multi-transfer formulations (Sections 4.1.3-4.2, Appendices B, H);
* :mod:`repro.workloads.tpcc` — full TPC-C port, warehouse = reactor
  (Section 4.3, Appendices D-F);
* :mod:`repro.workloads.ycsb` — YCSB with multi_update, key = reactor
  (Appendix C);
* :mod:`repro.workloads.exchange` — the digital currency exchange of
  Figure 1 (Appendix G).

Public exports are the four workload submodules themselves (imported
eagerly so ``from repro.workloads import smallbank, tpcc`` works
without touching module internals); each submodule exposes its
reactor-type declarations, a loader, and a closed-loop workload class.
"""

from repro.workloads import exchange, smallbank, tpcc, ycsb  # noqa: F401

__all__ = ["smallbank", "tpcc", "ycsb", "exchange"]
