"""The digital currency exchange of Figure 1 (evaluated in Appendix G).

A simplified exchange settles credit-card-funded currency orders under
two risk rules: per-provider unsettled exposure must stay below
``p_exposure``, and the risk-adjusted exposure across providers must
stay below ``g_risk``.  Risk adjustment runs an expensive Monte-Carlo
kernel ``sim_risk`` whose result is cached for a time window.

Three program/deployment strategies from Appendix G:

* ``sequential`` — the classic transactional formulation of Figure
  1(a) on a single reactor holding all relations; everything runs on
  one executor.
* ``query-parallelism`` — the same classic program, but with the
  ``orders`` relation horizontally partitioned across fragment
  reactors: the join/scan parallelizes (what a query optimizer could
  do), while ``sim_risk`` still runs sequentially at the exchange.
* ``procedure-parallelism`` — the reactor formulation of Figure 1(b):
  each provider reactor runs ``calc_risk`` (scan *and* ``sim_risk``)
  in parallel.

As in the paper, the scan per provider covers a fixed window of recent
orders (modeling a concurrent settlement process that keeps the
unsettled set bounded), and ``sim_risk`` is simulated by generating a
configured number of random numbers.  Risk-cache windows are loaded at
zero so ``sim_risk`` always recomputes, and limits are loaded high so
transactions never abort (Appendix G methodology).
"""

from __future__ import annotations

from repro.core.database import ReactorDatabase
from repro.core.reactor import ReactorType
from repro.relational import (
    IndexSpec,
    float_col,
    int_col,
    make_schema,
    str_col,
)

EXCHANGE_NAME = "exchange"

#: Loaded so that aborts never fire and sim_risk always recomputes.
P_EXPOSURE = 1e12
G_RISK = 1e12

#: Orders scanned per provider per authorization (the paper tunes this
#: window; we default lower to keep pure-Python scans tractable).
DEFAULT_WINDOW = 200
DEFAULT_ORDERS_PER_PROVIDER = 2000


def provider_name(index: int) -> str:
    return f"provider{index}"


def fragment_name(index: int) -> str:
    return f"orders_frag{index}"


def provider_index(name: str) -> int:
    """Inverse of :func:`provider_name` (providers sort
    lexicographically, so positional pairing would be wrong)."""
    return int(name[len("provider"):])


def _sim_risk_value(exposure: float) -> float:
    """The (deterministic stand-in) risk model output."""
    return exposure * 0.5 + 1.0


# ----------------------------------------------------------------------
# Reactor formulation (Figure 1b): Exchange + Provider reactors
# ----------------------------------------------------------------------

def provider_reactor_schema():
    return [
        make_schema("provider_info", [
            str_col("key"), float_col("risk"), float_col("time"),
            float_col("window"), int_col("next_time"),
            int_col("scan_window"),
        ], ["key"]),
        make_schema("orders", [
            int_col("time"), int_col("wallet"), float_col("value"),
            str_col("settled"),
        ], ["time"], [IndexSpec("by_time", ("time",), ordered=True)]),
    ]


def exchange_reactor_schema():
    return [
        make_schema("settlement_risk", [
            str_col("key"), float_col("p_exposure"), float_col("g_risk"),
        ], ["key"]),
        make_schema("provider_names", [str_col("value")], ["value"]),
    ]


PROVIDER = ReactorType("Provider", provider_reactor_schema)
EXCHANGE = ReactorType("Exchange", exchange_reactor_schema)


@PROVIDER.procedure
def calc_risk(ctx, p_exposure: float, sim_risk_randoms: int):
    """Figure 1(b): exposure check + (re)computation of provider risk.

    The exposure scan covers the provider's recent-order window
    (reverse range scan by time), mirroring the classic formulation's
    tuned window so the strategies compare like for like.
    """
    info = ctx.lookup("provider_info", "info")
    low = info["next_time"] - info["scan_window"]
    recent = ctx.select("orders", index="by_time", low=(low,),
                        high=None)
    exposure = sum(r["value"] for r in recent if r["settled"] == "N")
    if exposure > p_exposure:
        ctx.abort(f"provider {ctx.my_name()!r} exposure {exposure} "
                  f"above limit")
    p_risk = info["risk"]
    if info["time"] < ctx.now - info["window"]:
        # sim_risk: the expensive Monte-Carlo kernel, modeled by its
        # random-number-generation cost as in the paper's experiments.
        yield ctx.simulate_random_work(sim_risk_randoms)
        p_risk = _sim_risk_value(exposure)
        ctx.update("provider_info", "info",
                   {"risk": p_risk, "time": ctx.now})
    return p_risk


@PROVIDER.procedure
def add_entry(ctx, wallet: int, value: float):
    """Figure 1(b): record a new unsettled order at this provider."""
    info = ctx.lookup("provider_info", "info")
    order_time = info["next_time"]
    ctx.update("provider_info", "info", {"next_time": order_time + 1})
    ctx.insert("orders", {
        "time": order_time, "wallet": wallet, "value": value,
        "settled": "N",
    })


@EXCHANGE.procedure
def auth_pay(ctx, pprovider: str, pwallet: int, pvalue: float,
             sim_risk_randoms: int):
    """Figure 1(b): authorize a payment with parallel risk checks."""
    limits = ctx.lookup("settlement_risk", "limits")
    risk, exposure = limits["g_risk"], limits["p_exposure"]
    results = []
    for row in ctx.select("provider_names"):
        res = yield ctx.call(row["value"], "calc_risk", exposure,
                             sim_risk_randoms)
        results.append(res)
    total_risk = 0.0
    for res in results:
        total_risk += (yield ctx.get(res))
    if total_risk + pvalue < risk:
        yield ctx.call(pprovider, "add_entry", pwallet, pvalue)
    else:
        ctx.abort("global risk limit exceeded")


# ----------------------------------------------------------------------
# Classic formulation (Figure 1a): one stored procedure over shared
# relations; optionally with the orders relation partitioned into
# fragment reactors for query-level parallelism.
# ----------------------------------------------------------------------

def classic_exchange_schema():
    return [
        make_schema("settlement_risk", [
            str_col("key"), float_col("p_exposure"), float_col("g_risk"),
        ], ["key"]),
        make_schema("provider", [
            str_col("name"), float_col("risk"), float_col("time"),
            float_col("window"), int_col("next_time"),
            int_col("scan_window"),
        ], ["name"]),
        make_schema("orders", [
            str_col("provider"), int_col("time"), int_col("wallet"),
            float_col("value"), str_col("settled"),
        ], ["provider", "time"], [
            IndexSpec("by_provider_time", ("provider", "time"),
                      ordered=True),
        ]),
    ]


def fragment_schema():
    return [
        make_schema("orders", [
            str_col("provider"), int_col("time"), int_col("wallet"),
            float_col("value"), str_col("settled"),
        ], ["provider", "time"], [
            IndexSpec("by_provider_time", ("provider", "time"),
                      ordered=True),
        ]),
    ]


CLASSIC_EXCHANGE = ReactorType("ClassicExchange", classic_exchange_schema)
ORDERS_FRAGMENT = ReactorType("OrdersFragment", fragment_schema)


def _window_exposure(rows) -> float:
    return sum(r["value"] for r in rows if r["settled"] == "N")


@CLASSIC_EXCHANGE.procedure
def auth_pay_sequential(ctx, pprovider: str, pwallet: int,
                        pvalue: float, sim_risk_randoms: int):
    """Figure 1(a) verbatim: sequential scan + sim_risk per provider."""
    limits = ctx.lookup("settlement_risk", "limits")
    risk, exposure_limit = limits["g_risk"], limits["p_exposure"]
    total_risk = 0.0
    for provider in ctx.select("provider"):
        low = (provider["name"],
               provider["next_time"] - provider["scan_window"])
        high = (provider["name"],)
        window = ctx.select("orders", index="by_provider_time",
                            low=low, high=high)
        exposure = _window_exposure(window)
        if exposure > exposure_limit:
            ctx.abort("provider exposure above limit")
        if provider["time"] < ctx.now - provider["window"]:
            yield ctx.simulate_random_work(sim_risk_randoms)
            p_risk = _sim_risk_value(exposure)
            ctx.update("provider", provider["name"],
                       {"risk": p_risk, "time": ctx.now})
            total_risk += p_risk
        else:
            total_risk += provider["risk"]
    if total_risk + pvalue < risk:
        provider = ctx.lookup("provider", pprovider)
        order_time = provider["next_time"]
        ctx.update("provider", pprovider,
                   {"next_time": order_time + 1})
        ctx.insert("orders", {
            "provider": pprovider, "time": order_time,
            "wallet": pwallet, "value": pvalue, "settled": "N",
        })
    else:
        ctx.abort("global risk limit exceeded")


@ORDERS_FRAGMENT.procedure
def scan_exposure(ctx, provider: str, low_time: int):
    """Parallelizable part of the classic join: one fragment's scan."""
    window = ctx.select("orders", index="by_provider_time",
                        low=(provider, low_time), high=(provider,))
    return _window_exposure(window)


@ORDERS_FRAGMENT.procedure
def append_order(ctx, provider: str, order_time: int, wallet: int,
                 value: float):
    ctx.insert("orders", {
        "provider": provider, "time": order_time, "wallet": wallet,
        "value": value, "settled": "N",
    })


@CLASSIC_EXCHANGE.procedure
def auth_pay_query_parallel(ctx, pprovider: str, pwallet: int,
                            pvalue: float, sim_risk_randoms: int):
    """Figure 1(a) under a parallelized foreign-key join.

    The per-provider scans fan out to the fragment reactors (what a
    query optimizer could parallelize), but every ``sim_risk`` still
    runs sequentially at the exchange — the contrast Appendix G draws
    against holistic procedure-level parallelism.
    """
    limits = ctx.lookup("settlement_risk", "limits")
    risk, exposure_limit = limits["g_risk"], limits["p_exposure"]
    providers = ctx.select("provider")
    futures = []
    for provider in providers:
        fut = yield ctx.call(
            fragment_name(provider_index(provider["name"])),
            "scan_exposure", provider["name"],
            provider["next_time"] - provider["scan_window"])
        futures.append(fut)
    total_risk = 0.0
    for provider, fut in zip(providers, futures):
        exposure = yield ctx.get(fut)
        if exposure > exposure_limit:
            ctx.abort("provider exposure above limit")
        if provider["time"] < ctx.now - provider["window"]:
            yield ctx.simulate_random_work(sim_risk_randoms)
            p_risk = _sim_risk_value(exposure)
            ctx.update("provider", provider["name"],
                       {"risk": p_risk, "time": ctx.now})
            total_risk += p_risk
        else:
            total_risk += provider["risk"]
    if total_risk + pvalue < risk:
        provider = ctx.lookup("provider", pprovider)
        order_time = provider["next_time"]
        ctx.update("provider", pprovider,
                   {"next_time": order_time + 1})
        yield ctx.call(fragment_name(provider_index(pprovider)),
                       "append_order", pprovider, order_time, pwallet,
                       pvalue)
    else:
        ctx.abort("global risk limit exceeded")


# ----------------------------------------------------------------------
# Loading
# ----------------------------------------------------------------------

def load_reactor_model(database: ReactorDatabase, n_providers: int,
                       orders_per_provider: int =
                       DEFAULT_ORDERS_PER_PROVIDER,
                       window: int = DEFAULT_WINDOW) -> None:
    """Populate the Figure 1(b) database (Exchange + Providers)."""
    database.load(EXCHANGE_NAME, "settlement_risk", [{
        "key": "limits", "p_exposure": P_EXPOSURE, "g_risk": G_RISK,
    }])
    database.load(EXCHANGE_NAME, "provider_names", [
        {"value": provider_name(i)} for i in range(n_providers)
    ])
    for i in range(n_providers):
        name = provider_name(i)
        database.load(name, "provider_info", [{
            "key": "info", "risk": 0.0, "time": -1e18, "window": 0.0,
            "next_time": orders_per_provider,
            "scan_window": window,
        }])
        database.load(name, "orders", (
            {"time": t, "wallet": t % 97,
             "value": float(t % 50) + 1.0,
             "settled": "N" if t % 3 == 0 else "Y"}
            for t in range(orders_per_provider)
        ))


def load_classic(database: ReactorDatabase, n_providers: int,
                 partitioned: bool,
                 orders_per_provider: int = DEFAULT_ORDERS_PER_PROVIDER,
                 window: int = DEFAULT_WINDOW) -> None:
    """Populate the Figure 1(a) database.

    ``partitioned=False`` puts everything on the single classic
    exchange reactor (sequential strategy); ``partitioned=True``
    spreads ``orders`` over one fragment reactor per provider
    (query-parallelism strategy).
    """
    database.load(EXCHANGE_NAME, "settlement_risk", [{
        "key": "limits", "p_exposure": P_EXPOSURE, "g_risk": G_RISK,
    }])
    database.load(EXCHANGE_NAME, "provider", [
        {"name": provider_name(i), "risk": 0.0, "time": -1e18,
         "window": 0.0, "next_time": orders_per_provider,
         "scan_window": window}
        for i in range(n_providers)
    ])

    def order_rows(i: int):
        name = provider_name(i)
        return (
            {"provider": name, "time": t, "wallet": t % 97,
             "value": float(t % 50) + 1.0,
             "settled": "N" if t % 3 == 0 else "Y"}
            for t in range(orders_per_provider)
        )

    for i in range(n_providers):
        if partitioned:
            database.load(fragment_name(i), "orders", order_rows(i))
        else:
            database.load(EXCHANGE_NAME, "orders", order_rows(i))
