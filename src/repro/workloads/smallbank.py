"""Extended Smallbank benchmark (paper Section 4.1.3, Appendix H).

Each customer is a reactor (Figure 20) encapsulating three relations:
``account`` (name -> customer id), ``savings`` and ``checking``.  On
top of the classic Smallbank transaction mix we implement the paper's
extensions: the OLTP-Bench ``transfer`` and the new ``multi-transfer``
(a group transfer from one source to many destinations) in its four
program formulations of Section 4.1.4:

* ``fully-sync`` — sequential transfer sub-transactions, each with a
  synchronous credit and debit;
* ``partially-async`` — transfers overlap the credit with the debit
  but still pay communication per transfer (the implicit sub-
  transaction completion synchronization);
* ``fully-async`` — all credits dispatched asynchronously up front,
  then the per-destination debits on the source;
* ``opt`` — asynchronous credits plus a single combined debit.

The procedure bodies follow Figure 21 of the paper line by line
(including the explicit synchronizations it performs "for code
clarity").
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.database import ReactorDatabase
from repro.core.reactor import ReactorType
from repro.relational import (
    float_col,
    int_col,
    make_schema,
    str_col,
)

INITIAL_BALANCE = 10_000.0

#: The four multi-transfer program formulations of Section 4.1.4.
VARIANTS = ("fully-sync", "partially-async", "fully-async", "opt")


def customer_schema():
    """The three relations of Figure 20.

    The redundant ``cust_id`` columns in savings/checking and the
    account-lookup indirection are kept for strict compliance with the
    benchmark specification, as the paper does (Appendix H).
    """
    return [
        make_schema("account",
                    [str_col("name"), int_col("cust_id")],
                    ["name"]),
        make_schema("savings",
                    [int_col("cust_id"), float_col("balance")],
                    ["cust_id"]),
        make_schema("checking",
                    [int_col("cust_id"), float_col("balance")],
                    ["cust_id"]),
    ]


CUSTOMER = ReactorType("Customer", customer_schema)


# ----------------------------------------------------------------------
# Local building blocks
# ----------------------------------------------------------------------

def _lookup_cust_id(ctx) -> int:
    row = ctx.lookup("account", ctx.my_name())
    if row is None:
        ctx.abort(f"unknown customer {ctx.my_name()!r}")
    return row["cust_id"]


@CUSTOMER.procedure
def create_account(ctx, cust_id: int) -> None:
    """Initial account setup (used by the loader's transactional path)."""
    ctx.insert("account", {"name": ctx.my_name(), "cust_id": cust_id})
    ctx.insert("savings",
               {"cust_id": cust_id, "balance": INITIAL_BALANCE})
    ctx.insert("checking",
               {"cust_id": cust_id, "balance": INITIAL_BALANCE})


@CUSTOMER.procedure
def transact_saving(ctx, amt: float) -> float:
    """Credit (or debit, when negative) the savings account."""
    cust_id = _lookup_cust_id(ctx)
    row = ctx.lookup("savings", cust_id)
    balance = row["balance"]
    if balance + amt < 0:
        ctx.abort("insufficient savings balance")
    ctx.update("savings", cust_id, {"balance": balance + amt})
    return balance + amt


@CUSTOMER.procedure(read_only=True)
def balance(ctx) -> float:
    """Classic Smallbank Balance: savings + checking.

    Declared read-only: under a deployment with replication and
    ``read_from_replicas``, Balance roots are served from a replica of
    the customer's container (bounded-staleness reads).
    """
    cust_id = _lookup_cust_id(ctx)
    savings = ctx.lookup("savings", cust_id)["balance"]
    checking = ctx.lookup("checking", cust_id)["balance"]
    return savings + checking


@CUSTOMER.procedure
def deposit_checking(ctx, amt: float) -> None:
    if amt < 0:
        ctx.abort("negative deposit")
    cust_id = _lookup_cust_id(ctx)
    row = ctx.lookup("checking", cust_id)
    ctx.update("checking", cust_id, {"balance": row["balance"] + amt})


@CUSTOMER.procedure
def write_check(ctx, amt: float) -> None:
    """WriteCheck: overdraft incurs a 1.0 penalty (per Smallbank)."""
    cust_id = _lookup_cust_id(ctx)
    savings = ctx.lookup("savings", cust_id)["balance"]
    checking = ctx.lookup("checking", cust_id)["balance"]
    total = savings + checking
    penalty = 1.0 if total < amt else 0.0
    ctx.update("checking", cust_id,
               {"balance": checking - amt - penalty})


@CUSTOMER.procedure
def amalgamate_into(ctx, amount: float) -> None:
    """Receive the amalgamated funds into checking."""
    cust_id = _lookup_cust_id(ctx)
    row = ctx.lookup("checking", cust_id)
    ctx.update("checking", cust_id, {"balance": row["balance"] + amount})


@CUSTOMER.procedure
def amalgamate(ctx, dst_cust_name: str):
    """Move all funds of this customer to ``dst_cust_name``."""
    cust_id = _lookup_cust_id(ctx)
    savings = ctx.lookup("savings", cust_id)["balance"]
    checking = ctx.lookup("checking", cust_id)["balance"]
    ctx.update("savings", cust_id, {"balance": 0.0})
    ctx.update("checking", cust_id, {"balance": 0.0})
    fut = yield ctx.call(dst_cust_name, "amalgamate_into",
                         savings + checking)
    yield ctx.get(fut)


@CUSTOMER.procedure
def transfer(ctx, src_cust_name: str, dst_cust_name: str, amt: float,
             sequential: bool = True):
    """OLTP-Bench transfer: credit destination, debit source.

    ``sequential`` is the paper's ``env_seq_transfer`` switch: when
    set, the credit is synchronous (fully-sync); when clear, the
    credit overlaps the debit (partially-async).
    """
    if amt <= 0:
        ctx.abort("non-positive transfer amount")
    res = yield ctx.call(dst_cust_name, "transact_saving", amt)
    if sequential:
        yield ctx.get(res)
    fut = yield ctx.call(src_cust_name, "transact_saving", -amt)
    yield ctx.get(fut)


@CUSTOMER.procedure
def multi_transfer_sync(ctx, src_cust_name: str,
                        dst_cust_names: Sequence[str], amt: float,
                        sequential: bool = True):
    """fully-sync / partially-async multi-transfer (Figure 21).

    The explicit ``get`` on the transfer future is done for safety and
    code clarity; the transfer runs inline on this reactor anyway.
    """
    for dst_cust_name in dst_cust_names:
        res = yield ctx.call(src_cust_name, "transfer", src_cust_name,
                             dst_cust_name, amt, sequential)
        yield ctx.get(res)


@CUSTOMER.procedure
def multi_transfer_fully_async(ctx, src_cust_name: str,
                               dst_cust_names: Sequence[str],
                               amt: float):
    """fully-async multi-transfer: overlap credits and communication."""
    if amt <= 0:
        ctx.abort("non-positive transfer amount")
    for dst_cust_name in dst_cust_names:
        yield ctx.call(dst_cust_name, "transact_saving", amt)
    for __ in dst_cust_names:
        res = yield ctx.call(src_cust_name, "transact_saving", -amt)
        yield ctx.get(res)


@CUSTOMER.procedure
def multi_transfer_opt(ctx, src_cust_name: str,
                       dst_cust_names: Sequence[str], amt: float):
    """opt multi-transfer: single combined debit, credits overlapped."""
    if amt <= 0:
        ctx.abort("non-positive transfer amount")
    for dst_cust_name in dst_cust_names:
        yield ctx.call(dst_cust_name, "transact_saving", amt)
    num_dsts = len(dst_cust_names)
    yield ctx.call(src_cust_name, "transact_saving", -(amt * num_dsts))


# ----------------------------------------------------------------------
# Database construction and input generation
# ----------------------------------------------------------------------

def reactor_name(index: int) -> str:
    return f"cust{index}"


def declarations(n_customers: int) -> list[tuple[str, ReactorType]]:
    return [(reactor_name(i), CUSTOMER) for i in range(n_customers)]


def load(database: ReactorDatabase, n_customers: int,
         initial_balance: float = INITIAL_BALANCE) -> None:
    """Bulk-load customer accounts (non-transactional, setup only)."""
    for i in range(n_customers):
        name = reactor_name(i)
        database.load(name, "account", [{"name": name, "cust_id": i}])
        database.load(name, "savings",
                      [{"cust_id": i, "balance": initial_balance}])
        database.load(name, "checking",
                      [{"cust_id": i, "balance": initial_balance}])


def multi_transfer_spec(variant: str, src: str, dsts: Iterable[str],
                        amount: float = 1.0) -> tuple[str, str, tuple]:
    """Build a (reactor, procedure, args) spec for one formulation."""
    dsts = tuple(dsts)
    if variant == "fully-sync":
        return (src, "multi_transfer_sync", (src, dsts, amount, True))
    if variant == "partially-async":
        return (src, "multi_transfer_sync", (src, dsts, amount, False))
    if variant == "fully-async":
        return (src, "multi_transfer_fully_async", (src, dsts, amount))
    if variant == "opt":
        return (src, "multi_transfer_opt", (src, dsts, amount))
    raise ValueError(f"unknown multi-transfer variant {variant!r}; "
                     f"expected one of {VARIANTS}")


#: The classic Smallbank mix (uniform over the six transactions, per
#: the original benchmark; the paper's experiments use multi-transfer
#: instead, but the full mix is useful for integration workloads).
STANDARD_MIX = (
    "balance",
    "deposit_checking",
    "transact_saving",
    "write_check",
    "amalgamate",
    "transfer",
)

#: 80% Balance reads — the read-replica-routing showcase mix.
READ_HEAVY_MIX = ("balance",) * 8 + ("deposit_checking",
                                     "transact_saving")


class SmallbankWorkload:
    """Closed-loop input generation for the classic Smallbank mix."""

    def __init__(self, n_customers: int,
                 mix: tuple[str, ...] = STANDARD_MIX,
                 hotspot_fraction: float = 0.0) -> None:
        if n_customers < 2:
            raise ValueError("need at least two customers")
        self.n_customers = n_customers
        self.mix = mix
        #: Fraction of accesses hitting the first 10% of accounts
        #: (0 disables the hotspot).
        self.hotspot_fraction = hotspot_fraction

    def _customer(self, rng) -> int:
        if self.hotspot_fraction and \
                rng.random() < self.hotspot_fraction:
            return rng.randrange(max(1, self.n_customers // 10))
        return rng.randrange(self.n_customers)

    def _two_customers(self, rng) -> tuple[str, str]:
        first = self._customer(rng)
        second = self._customer(rng)
        while second == first:
            second = (second + 1) % self.n_customers
        return reactor_name(first), reactor_name(second)

    def next_txn(self, worker) -> tuple[str, str, tuple]:
        rng = worker.rng
        txn = self.mix[rng.randrange(len(self.mix))]
        if txn == "balance":
            return (reactor_name(self._customer(rng)), "balance", ())
        if txn == "deposit_checking":
            return (reactor_name(self._customer(rng)),
                    "deposit_checking", (rng.uniform(1.0, 100.0),))
        if txn == "transact_saving":
            return (reactor_name(self._customer(rng)),
                    "transact_saving", (rng.uniform(-50.0, 100.0),))
        if txn == "write_check":
            return (reactor_name(self._customer(rng)), "write_check",
                    (rng.uniform(1.0, 50.0),))
        if txn == "amalgamate":
            src, dst = self._two_customers(rng)
            return (src, "amalgamate", (dst,))
        src, dst = self._two_customers(rng)
        return (src, "transfer", (src, dst, rng.uniform(1.0, 50.0)))

    def factory_for(self, worker_id: int):
        return self.next_txn


def total_money(database: ReactorDatabase, n_customers: int) -> float:
    """Invariant check: transfers conserve the total balance."""
    total = 0.0
    for i in range(n_customers):
        name = reactor_name(i)
        for table in ("savings", "checking"):
            rows = database.table_rows(name, table)
            total += sum(r["balance"] for r in rows)
    return total
