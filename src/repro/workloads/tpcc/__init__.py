"""TPC-C benchmark port: warehouse = reactor (paper Section 4.1.3).

Public exports: the reactor type (:data:`WAREHOUSE` with
``warehouse_schema`` / ``warehouse_name`` / ``warehouse_id`` and
:class:`TpccScale`), the loader (``declarations``, ``load``,
``last_name``), the closed-loop driver (:class:`TpccWorkload` with the
:data:`STANDARD_MIX` / :data:`NEW_ORDER_ONLY` mixes and ``nurand``)
and the twelve TPC-C consistency checks (``check_database`` /
``check_warehouse`` / :class:`ConsistencyViolation`).
"""

from repro.workloads.tpcc.consistency import (
    ConsistencyViolation,
    check_database,
    check_warehouse,
)
from repro.workloads.tpcc.loader import declarations, last_name, load
from repro.workloads.tpcc.procedures import (
    WAREHOUSE,
    warehouse_id,
    warehouse_name,
)
from repro.workloads.tpcc.schema import TpccScale, warehouse_schema
from repro.workloads.tpcc.workload import (
    NEW_ORDER_ONLY,
    STANDARD_MIX,
    TpccWorkload,
    nurand,
)

__all__ = [
    "ConsistencyViolation",
    "check_database",
    "check_warehouse",
    "WAREHOUSE",
    "warehouse_schema",
    "warehouse_name",
    "warehouse_id",
    "TpccScale",
    "declarations",
    "load",
    "last_name",
    "TpccWorkload",
    "STANDARD_MIX",
    "NEW_ORDER_ONLY",
    "nurand",
]
