"""TPC-C consistency conditions.

The TPC-C specification (clause 3.3.2) defines consistency conditions
that must hold in any valid database state.  The checks below cover
the conditions expressible in our (payment-history simplified) schema
and serve as deep integration tests: after any mix of concurrent
transactions, a serializable engine must preserve all of them.

* **C1** — for each district: ``d_next_o_id - 1`` equals the maximum
  ``o_id`` in ``orders`` (and in ``new_order`` when non-empty);
* **C2** — for each district: new_order rows form a contiguous range
  of the most recent orders;
* **C3** — for each order: ``o_ol_cnt`` equals its number of
  order-line rows;
* **C4** — delivered orders (carrier set) have no new_order row and
  undelivered orders have exactly one;
* **C5** — order lines of delivered orders carry a delivery
  timestamp, those of undelivered orders do not.
"""

from __future__ import annotations

from typing import Any

from repro.core.database import ReactorDatabase
from repro.workloads.tpcc.procedures import warehouse_name


class ConsistencyViolation(AssertionError):
    """A TPC-C consistency condition failed."""


def check_warehouse(database: ReactorDatabase, w_id: int) -> None:
    """Check all conditions for one warehouse reactor."""
    name = warehouse_name(w_id)
    districts = database.table_rows(name, "district")
    orders = database.table_rows(name, "orders")
    new_orders = database.table_rows(name, "new_order")
    order_lines = database.table_rows(name, "order_line")

    orders_by_district: dict[int, list[dict[str, Any]]] = {}
    for order in orders:
        orders_by_district.setdefault(order["o_d_id"], []).append(order)
    new_by_district: dict[int, set[int]] = {}
    for row in new_orders:
        new_by_district.setdefault(row["no_d_id"], set()).add(
            row["no_o_id"])
    lines_by_order: dict[tuple[int, int], list[dict[str, Any]]] = {}
    for line in order_lines:
        key = (line["ol_d_id"], line["ol_o_id"])
        lines_by_order.setdefault(key, []).append(line)

    for district in districts:
        d_id = district["d_id"]
        d_orders = orders_by_district.get(d_id, [])
        max_o_id = max((o["o_id"] for o in d_orders), default=0)

        # C1: the district order counter is exactly one past the
        # newest order.
        if district["d_next_o_id"] != max_o_id + 1:
            raise ConsistencyViolation(
                f"C1: wh {w_id} district {d_id}: d_next_o_id="
                f"{district['d_next_o_id']} but max(o_id)={max_o_id}")

        # C2: undelivered order ids form a contiguous top range.
        pending = sorted(new_by_district.get(d_id, set()))
        if pending:
            expected = list(range(pending[0], pending[0] +
                                  len(pending)))
            if pending != expected or pending[-1] != max_o_id:
                raise ConsistencyViolation(
                    f"C2: wh {w_id} district {d_id}: new_order ids "
                    f"{pending} are not the contiguous newest range")

        for order in d_orders:
            key = (d_id, order["o_id"])
            lines = lines_by_order.get(key, [])
            # C3: order line count matches the order header.
            if order["o_ol_cnt"] != len(lines):
                raise ConsistencyViolation(
                    f"C3: wh {w_id} order {key}: o_ol_cnt="
                    f"{order['o_ol_cnt']} but {len(lines)} lines")
            delivered = order["o_carrier_id"] is not None
            in_new_order = order["o_id"] in \
                new_by_district.get(d_id, set())
            # C4: delivery status agrees with the new_order table.
            if delivered and in_new_order:
                raise ConsistencyViolation(
                    f"C4: wh {w_id} order {key} delivered but still "
                    "in new_order")
            if not delivered and not in_new_order:
                raise ConsistencyViolation(
                    f"C4: wh {w_id} order {key} undelivered but "
                    "missing from new_order")
            # C5: line delivery timestamps agree with the header.
            for line in lines:
                has_ts = line["ol_delivery_d"] is not None
                if delivered and not has_ts:
                    raise ConsistencyViolation(
                        f"C5: wh {w_id} order {key} delivered but "
                        f"line {line['ol_number']} has no timestamp")
                if not delivered and has_ts:
                    raise ConsistencyViolation(
                        f"C5: wh {w_id} order {key} undelivered but "
                        f"line {line['ol_number']} has a timestamp")


def check_database(database: ReactorDatabase,
                   n_warehouses: int) -> None:
    """Check every warehouse; raises on the first violation."""
    for w_id in range(1, n_warehouses + 1):
        check_warehouse(database, w_id)
