"""TPC-C initial database population.

Deterministic (seeded) population of every warehouse reactor according
to :class:`~repro.workloads.tpcc.schema.TpccScale`.  Follows the spec's
structure — delivered and undelivered initial orders, customer last
names shared across a bucket of customers (so payment-by-last-name
scans return several rows), per-district order id counters — at the
configured cardinalities.
"""

from __future__ import annotations

import random

from repro.core.database import ReactorDatabase
from repro.core.reactor import ReactorType
from repro.workloads.tpcc.procedures import WAREHOUSE, warehouse_name
from repro.workloads.tpcc.schema import TpccScale

#: Syllables used by the spec to build customer last names.
_SYLLABLES = ("BAR", "OUGHT", "ABLE", "PRI", "PRES",
              "ESE", "ANTI", "CALLY", "ATION", "EING")


def last_name(number: int) -> str:
    """Spec last-name generator from a three-digit number."""
    return (_SYLLABLES[(number // 100) % 10]
            + _SYLLABLES[(number // 10) % 10]
            + _SYLLABLES[number % 10])


def declarations(n_warehouses: int) -> list[tuple[str, ReactorType]]:
    """Reactor declarations: warehouses are 1-based as in the spec."""
    return [(warehouse_name(w), WAREHOUSE)
            for w in range(1, n_warehouses + 1)]


def load(database: ReactorDatabase, n_warehouses: int,
         scale: TpccScale | None = None, seed: int = 7) -> None:
    """Populate all warehouse reactors (non-transactional bulk load)."""
    scale = scale or TpccScale()
    for w_id in range(1, n_warehouses + 1):
        _load_warehouse(database, w_id, scale,
                        random.Random(f"tpcc-load/{seed}/{w_id}"))


def _load_warehouse(database: ReactorDatabase, w_id: int,
                    scale: TpccScale, rng: random.Random) -> None:
    name = warehouse_name(w_id)
    database.load(name, "warehouse", [{
        "w_id": w_id, "w_name": f"W{w_id}",
        "w_tax": rng.uniform(0.0, 0.2), "w_ytd": 300_000.0,
        "w_h_count": 0,
    }])
    database.load(name, "item", (
        {"i_id": i, "i_name": f"item-{i}",
         "i_price": rng.uniform(1.0, 100.0),
         "i_data": f"data-{i}"}
        for i in range(1, scale.items + 1)
    ))
    database.load(name, "stock", (
        {"s_i_id": i, "s_quantity": rng.randint(10, 100),
         "s_ytd": 0.0, "s_order_cnt": 0, "s_remote_cnt": 0,
         "s_data": f"stock-{i}", "s_dist_info": f"dist-{i % 10}"}
        for i in range(1, scale.items + 1)
    ))
    for d_id in range(1, scale.districts + 1):
        _load_district(database, name, d_id, scale, rng)


def _load_district(database: ReactorDatabase, name: str, d_id: int,
                   scale: TpccScale, rng: random.Random) -> None:
    n_orders = scale.orders_per_district
    database.load(name, "district", [{
        "d_id": d_id, "d_name": f"D{d_id}",
        "d_tax": rng.uniform(0.0, 0.2), "d_ytd": 30_000.0,
        "d_next_o_id": n_orders + 1,
    }])
    database.load(name, "customer", (
        {
            "c_d_id": d_id, "c_id": c_id,
            "c_first": f"first-{c_id:05d}",
            "c_last": last_name((c_id - 1) % scale.last_names),
            "c_credit": "BC" if rng.random() < 0.10 else "GC",
            "c_discount": rng.uniform(0.0, 0.5),
            "c_balance": -10.0, "c_ytd_payment": 10.0,
            "c_payment_cnt": 1, "c_delivery_cnt": 0,
            "c_data": "initial",
        }
        for c_id in range(1, scale.customers_per_district + 1)
    ))
    # Initial orders: a random permutation of customers, the most
    # recent `undelivered_fraction` still awaiting delivery.
    customer_ids = list(range(1, scale.customers_per_district + 1))
    rng.shuffle(customer_ids)
    first_undelivered = int(n_orders * (1.0 - scale.undelivered_fraction)) \
        + 1
    orders = []
    order_lines = []
    new_orders = []
    for o_id in range(1, n_orders + 1):
        c_id = customer_ids[(o_id - 1) % len(customer_ids)]
        ol_cnt = rng.randint(5, 15)
        delivered = o_id < first_undelivered
        orders.append({
            "o_d_id": d_id, "o_id": o_id, "o_c_id": c_id,
            "o_carrier_id": rng.randint(1, 10) if delivered else None,
            "o_ol_cnt": ol_cnt, "o_all_local": 1, "o_entry_d": 0.0,
        })
        for number in range(ol_cnt):
            order_lines.append({
                "ol_d_id": d_id, "ol_o_id": o_id, "ol_number": number,
                "ol_i_id": rng.randint(1, scale.items),
                "ol_supply_w_id": int(name[2:]),
                "ol_delivery_d": 0.0 if delivered else None,
                "ol_quantity": 5,
                "ol_amount": 0.0 if delivered
                else rng.uniform(0.01, 9_999.99),
                "ol_dist_info": f"dist-{d_id}",
            })
        if not delivered:
            new_orders.append({"no_d_id": d_id, "no_o_id": o_id})
    database.load(name, "orders", orders)
    database.load(name, "order_line", order_lines)
    database.load(name, "new_order", new_orders)
