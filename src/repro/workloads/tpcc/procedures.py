"""TPC-C transactions in the reactor programming model.

All five transactions of the standard mix, ported per the paper's
description of its OLTP-Bench-based implementation (Section 4.1.3):
each warehouse is a reactor; remote-warehouse data access — stock
updates in new-order, customer payment/lookup in payment — becomes an
asynchronous sub-transaction on the remote warehouse reactor, with
calls overlapped as much as possible ("unless otherwise stated, we
overlap calls between reactors as much as possible").

Stock updates to one remote warehouse are batched into a single
sub-transaction per target reactor: invoking two concurrent
sub-transactions of one root on the same reactor is a dangerous
structure under the runtime's safety condition (Section 2.2.4), and
batching is both the natural and the efficient formulation.

``new_order`` accepts two knobs used by the paper's experiments:

* ``sync_remote`` — call remote warehouses synchronously
  (shared-nothing-*sync* program formulation) instead of overlapping;
* ``delay_range`` — the Section 4.3.2 "new-order-delay" variant, which
  models stock replenishment calculations by an artificial 300-400 us
  computation per stock update.
"""

from __future__ import annotations

from repro.core.reactor import ReactorType
from repro.relational import col
from repro.workloads.tpcc.schema import warehouse_schema

WAREHOUSE = ReactorType("Warehouse", warehouse_schema)


def warehouse_name(w_id: int) -> str:
    """Reactor name of warehouse ``w_id``."""
    return f"wh{w_id}"


def warehouse_id(name: str) -> int:
    """Inverse of :func:`warehouse_name`."""
    return int(name[2:])


def _customer_by_last_name(ctx, d_id: int, c_last: str):
    """Spec rule: pick the middle customer (ordered by first name)."""
    rows = ctx.select("customer",
                      (col("c_d_id") == d_id) & (col("c_last") == c_last))
    if not rows:
        ctx.abort(f"no customer with last name {c_last!r}")
    rows.sort(key=lambda r: r["c_first"])
    return rows[len(rows) // 2]


# ----------------------------------------------------------------------
# new-order
# ----------------------------------------------------------------------

@WAREHOUSE.procedure
def stock_update_batch(ctx, items: list, home_w_id: int,
                       delay_range: tuple | None = None):
    """Update stock rows for a batch of order lines at this warehouse.

    Returns per-item ``(i_id, quantity_after, dist_info)``; run on the
    supplying warehouse reactor (possibly remote to the order's home).
    """
    results = []
    for i_id, quantity in items:
        if delay_range is not None:
            low, high = delay_range
            yield ctx.compute(ctx.rng.uniform(low, high))
        stock = ctx.lookup("stock", i_id)
        if stock is None:
            ctx.abort(f"missing stock for item {i_id}")
        s_quantity = stock["s_quantity"]
        if s_quantity - quantity >= 10:
            s_quantity -= quantity
        else:
            s_quantity = s_quantity - quantity + 91
        remote = warehouse_id(ctx.my_name()) != home_w_id
        ctx.update("stock", i_id, {
            "s_quantity": s_quantity,
            "s_ytd": stock["s_ytd"] + quantity,
            "s_order_cnt": stock["s_order_cnt"] + 1,
            "s_remote_cnt": stock["s_remote_cnt"] + (1 if remote else 0),
        })
        results.append((i_id, s_quantity, stock["s_dist_info"]))
    return results


@WAREHOUSE.procedure
def new_order(ctx, w_id: int, d_id: int, c_id: int, order_items: list,
              sync_remote: bool = False,
              delay_range: tuple | None = None):
    """The TPC-C new-order transaction.

    ``order_items`` is a list of ``(supply_w_name, i_id, quantity)``;
    a ``supply_w_name`` equal to this reactor's name is a local item.
    An invalid item id (the spec's 1% "unused item") aborts.
    """
    warehouse = ctx.lookup("warehouse", w_id)
    district = ctx.lookup("district", d_id)
    o_id = district["d_next_o_id"]
    ctx.update("district", d_id, {"d_next_o_id": o_id + 1})
    customer = ctx.lookup("customer", (d_id, c_id))
    if customer is None:
        ctx.abort(f"no customer {c_id} in district {d_id}")

    # Validate items first (the 1% unused-item abort happens before any
    # remote work is dispatched, per the OLTP-Bench implementation).
    # Per-item lookups on purpose, not multi_lookup: an invalid item
    # must abort after examining only the items before it — batching
    # would read (and charge for) the full list and change seeded
    # histories on the abort path.
    prices = []
    for __, i_id, __q in order_items:
        item = ctx.lookup("item", i_id)
        if item is None:
            ctx.abort(f"unused item {i_id}")
        prices.append(item["i_price"])

    # Group stock updates by supplying warehouse; dispatch remote
    # batches first so they overlap with local processing.
    my_name = ctx.my_name()
    batches: dict[str, list] = {}
    for supply_w, i_id, quantity in order_items:
        batches.setdefault(supply_w, []).append((i_id, quantity))
    remote_futures = []
    for supply_w, batch in batches.items():
        if supply_w == my_name:
            continue
        fut = yield ctx.call(supply_w, "stock_update_batch", batch,
                             w_id, delay_range)
        if sync_remote:
            yield ctx.get(fut)
            remote_futures.append((supply_w, fut))
        else:
            remote_futures.append((supply_w, fut))

    all_local = 1 if len(batches) == 1 and my_name in batches else 0
    ctx.insert("orders", {
        "o_d_id": d_id, "o_id": o_id, "o_c_id": c_id,
        "o_carrier_id": None, "o_ol_cnt": len(order_items),
        "o_all_local": all_local, "o_entry_d": ctx.now,
    })
    ctx.insert("new_order", {"no_d_id": d_id, "no_o_id": o_id})

    # Local stock updates proceed while remote batches are in flight.
    stock_info: dict[str, list] = {}
    if my_name in batches:
        local = yield ctx.call(my_name, "stock_update_batch",
                               batches[my_name], w_id, delay_range)
        stock_info[my_name] = (yield ctx.get(local))
    for supply_w, fut in remote_futures:
        stock_info[supply_w] = (yield ctx.get(fut))

    per_wh_queue = {name: list(rows) for name, rows in stock_info.items()}
    total = 0.0
    tax = (1.0 + warehouse["w_tax"] + district["d_tax"]) * \
        (1.0 - customer["c_discount"])
    for number, (supply_w, i_id, quantity) in enumerate(order_items):
        __, qty_after, dist_info = per_wh_queue[supply_w].pop(0)
        amount = quantity * prices[number] * tax
        total += amount
        ctx.insert("order_line", {
            "ol_d_id": d_id, "ol_o_id": o_id, "ol_number": number,
            "ol_i_id": i_id, "ol_supply_w_id": warehouse_id(supply_w),
            "ol_delivery_d": None, "ol_quantity": quantity,
            "ol_amount": amount, "ol_dist_info": dist_info,
        })
    return {"o_id": o_id, "total": total}


# ----------------------------------------------------------------------
# payment
# ----------------------------------------------------------------------

@WAREHOUSE.procedure
def pay_customer(ctx, c_d_id: int, c_id: int | None, c_last: str | None,
                 amount: float):
    """Apply a payment to a customer at this (customer's) warehouse."""
    if c_id is None:
        customer = _customer_by_last_name(ctx, c_d_id, c_last)
        c_id = customer["c_id"]
    else:
        customer = ctx.lookup("customer", (c_d_id, c_id))
        if customer is None:
            ctx.abort(f"no customer {c_id}")
    values = {
        "c_balance": customer["c_balance"] - amount,
        "c_ytd_payment": customer["c_ytd_payment"] + amount,
        "c_payment_cnt": customer["c_payment_cnt"] + 1,
    }
    if customer["c_credit"] == "BC":
        # Bad-credit customers accumulate payment history in c_data.
        blob = f"{c_id},{c_d_id},{amount:.2f};" + customer["c_data"]
        values["c_data"] = blob[:120]
    ctx.update("customer", (c_d_id, c_id), values)
    return c_id


@WAREHOUSE.procedure
def payment(ctx, w_id: int, d_id: int, amount: float,
            c_w_name: str, c_d_id: int, c_id: int | None,
            c_last: str | None):
    """The TPC-C payment transaction.

    The customer may belong to a remote warehouse (15% in the standard
    mix): the customer update then runs as a sub-transaction on the
    customer's warehouse reactor, overlapped with the home-warehouse
    bookkeeping.
    """
    customer_fut = None
    if c_w_name != ctx.my_name():
        customer_fut = yield ctx.call(c_w_name, "pay_customer",
                                      c_d_id, c_id, c_last, amount)
    warehouse = ctx.lookup("warehouse", w_id)
    h_seq = warehouse["w_h_count"] + 1
    ctx.update("warehouse", w_id, {
        "w_ytd": warehouse["w_ytd"] + amount,
        "w_h_count": h_seq,
    })
    district = ctx.lookup("district", d_id)
    ctx.update("district", d_id, {"d_ytd": district["d_ytd"] + amount})
    if customer_fut is None:
        paid_c_id = yield from _inline_pay(ctx, c_d_id, c_id, c_last,
                                           amount)
    else:
        paid_c_id = yield ctx.get(customer_fut)
    ctx.insert("history", {
        "h_seq": h_seq, "h_c_id": paid_c_id, "h_c_d_id": c_d_id,
        "h_c_w_id": warehouse_id(c_w_name), "h_d_id": d_id, "h_w_id": w_id,
        "h_amount": amount,
        "h_data": f"{warehouse['w_name']}    {d_id}",
    })
    return paid_c_id


def _inline_pay(ctx, c_d_id: int, c_id: int | None, c_last: str | None,
                amount: float):
    """Local-customer payment executes as a synchronous self-call."""
    fut = yield ctx.call(ctx.my_name(), "pay_customer", c_d_id, c_id,
                         c_last, amount)
    result = yield ctx.get(fut)
    return result


# ----------------------------------------------------------------------
# order-status, delivery, stock-level
# ----------------------------------------------------------------------

@WAREHOUSE.procedure
def order_status(ctx, d_id: int, c_id: int | None, c_last: str | None):
    """Read-only: a customer's most recent order and its lines."""
    if c_id is None:
        customer = _customer_by_last_name(ctx, d_id, c_last)
        c_id = customer["c_id"]
    else:
        customer = ctx.lookup("customer", (d_id, c_id))
        if customer is None:
            ctx.abort(f"no customer {c_id}")
    orders = ctx.select("orders", index="order_by_cust",
                        low=(d_id, c_id), high=(d_id, c_id),
                        reverse=True, limit=1)
    if not orders:
        return {"c_id": c_id, "balance": customer["c_balance"],
                "order": None, "lines": []}
    order = orders[0]
    lines = ctx.select("order_line", index="ol_by_order",
                       low=(d_id, order["o_id"]),
                       high=(d_id, order["o_id"]))
    return {"c_id": c_id, "balance": customer["c_balance"],
            "order": order["o_id"], "lines": len(lines)}


@WAREHOUSE.procedure
def delivery(ctx, w_id: int, carrier_id: int):
    """Deliver the oldest undelivered order of every district."""
    delivered = []
    districts = ctx.select("district")
    for district in districts:
        d_id = district["d_id"]
        pending = ctx.select("new_order", index="no_order",
                             low=(d_id,), high=(d_id,), limit=1)
        if not pending:
            continue
        o_id = pending[0]["no_o_id"]
        ctx.delete("new_order", (d_id, o_id))
        order = ctx.lookup("orders", (d_id, o_id))
        ctx.update("orders", (d_id, o_id), {"o_carrier_id": carrier_id})
        lines = ctx.select("order_line", index="ol_by_order",
                           low=(d_id, o_id), high=(d_id, o_id))
        total = 0.0
        for line in lines:
            total += line["ol_amount"]
            ctx.update("order_line",
                       (d_id, o_id, line["ol_number"]),
                       {"ol_delivery_d": ctx.now})
        customer = ctx.lookup("customer", (d_id, order["o_c_id"]))
        ctx.update("customer", (d_id, order["o_c_id"]), {
            "c_balance": customer["c_balance"] + total,
            "c_delivery_cnt": customer["c_delivery_cnt"] + 1,
        })
        delivered.append((d_id, o_id))
    return delivered


@WAREHOUSE.procedure
def stock_level(ctx, d_id: int, threshold: int, recent_orders: int = 20):
    """Count distinct items in recent orders with stock below threshold."""
    district = ctx.lookup("district", d_id)
    next_o_id = district["d_next_o_id"]
    low_o_id = max(0, next_o_id - recent_orders)
    lines = ctx.select("order_line", index="ol_by_order",
                       low=(d_id, low_o_id), high=(d_id, next_o_id))
    item_ids = sorted({line["ol_i_id"] for line in lines})
    # Vectorized batch over the stock relation: identical footprint,
    # charge and recorded history to per-item lookups (no early exit
    # in this loop, unlike new_order's item validation).
    stocks = ctx.multi_lookup("stock", item_ids)
    count = 0
    for stock in stocks:
        if stock is not None and stock["s_quantity"] < threshold:
            count += 1
    return count


@WAREHOUSE.procedure
def empty_txn(ctx):
    """No-op transaction for the containerization-overhead experiment
    (Appendix F.3): submitted with concurrency control disabled."""
    return None
