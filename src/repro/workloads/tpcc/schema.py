"""TPC-C schema, one warehouse per reactor.

Each warehouse reactor encapsulates the nine TPC-C relations for its
warehouse (the paper's modeling: "we model each warehouse as a
reactor").  The ``item`` catalog is replicated into every warehouse
reactor, as in classic shared-nothing TPC-C partitionings.

Cardinalities are governed by :class:`TpccScale`.  The default is
scaled down from the full specification (100k items, 3k customers per
district) to keep pure-Python simulations tractable; transaction
*logic* is unaffected — contention lives in the warehouse and district
hot rows, whose counts are per spec.  ``TpccScale.full_spec()`` builds
the real sizes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.relational import (
    IndexSpec,
    float_col,
    int_col,
    make_schema,
    str_col,
)


@dataclass(frozen=True)
class TpccScale:
    """Cardinality knobs (per warehouse unless stated)."""

    districts: int = 10
    customers_per_district: int = 60
    items: int = 200
    #: initial delivered+undelivered orders per district
    orders_per_district: int = 30
    #: fraction of initial orders still undelivered (spec: 900/3000)
    undelivered_fraction: float = 0.3
    #: distinct customer last names (spec derives ~1000 from C_LAST)
    last_names: int = 20

    @staticmethod
    def full_spec() -> "TpccScale":
        return TpccScale(districts=10, customers_per_district=3000,
                         items=100_000, orders_per_district=3000,
                         undelivered_fraction=0.3, last_names=1000)

    def __post_init__(self) -> None:
        if self.districts < 1 or self.customers_per_district < 1:
            raise ValueError("invalid TPC-C scale")
        if self.items < 1 or self.orders_per_district < 1:
            raise ValueError("invalid TPC-C scale")


def warehouse_schema():
    """All nine relations of one warehouse reactor."""
    return [
        make_schema("warehouse", [
            int_col("w_id"), str_col("w_name"), float_col("w_tax"),
            float_col("w_ytd"), int_col("w_h_count"),
        ], ["w_id"]),
        make_schema("district", [
            int_col("d_id"), str_col("d_name"), float_col("d_tax"),
            float_col("d_ytd"), int_col("d_next_o_id"),
        ], ["d_id"]),
        make_schema("customer", [
            int_col("c_d_id"), int_col("c_id"), str_col("c_first"),
            str_col("c_last"), str_col("c_credit"),
            float_col("c_discount"), float_col("c_balance"),
            float_col("c_ytd_payment"), int_col("c_payment_cnt"),
            int_col("c_delivery_cnt"), str_col("c_data"),
        ], ["c_d_id", "c_id"], [
            IndexSpec("cust_by_last", ("c_d_id", "c_last")),
        ]),
        make_schema("history", [
            int_col("h_seq"), int_col("h_c_id"), int_col("h_c_d_id"),
            int_col("h_c_w_id"), int_col("h_d_id"), int_col("h_w_id"),
            float_col("h_amount"), str_col("h_data"),
        ], ["h_seq"]),
        make_schema("new_order", [
            int_col("no_d_id"), int_col("no_o_id"),
        ], ["no_d_id", "no_o_id"], [
            IndexSpec("no_order", ("no_d_id", "no_o_id"), ordered=True),
        ]),
        make_schema("orders", [
            int_col("o_d_id"), int_col("o_id"), int_col("o_c_id"),
            int_col("o_carrier_id", nullable=True),
            int_col("o_ol_cnt"), int_col("o_all_local"),
            float_col("o_entry_d"),
        ], ["o_d_id", "o_id"], [
            IndexSpec("order_by_cust", ("o_d_id", "o_c_id", "o_id"),
                      ordered=True),
        ]),
        make_schema("order_line", [
            int_col("ol_d_id"), int_col("ol_o_id"), int_col("ol_number"),
            int_col("ol_i_id"), int_col("ol_supply_w_id"),
            float_col("ol_delivery_d", nullable=True),
            int_col("ol_quantity"), float_col("ol_amount"),
            str_col("ol_dist_info"),
        ], ["ol_d_id", "ol_o_id", "ol_number"], [
            IndexSpec("ol_by_order", ("ol_d_id", "ol_o_id"),
                      ordered=True),
        ]),
        make_schema("item", [
            int_col("i_id"), str_col("i_name"), float_col("i_price"),
            str_col("i_data"),
        ], ["i_id"]),
        make_schema("stock", [
            int_col("s_i_id"), int_col("s_quantity"),
            float_col("s_ytd"), int_col("s_order_cnt"),
            int_col("s_remote_cnt"), str_col("s_data"),
            str_col("s_dist_info"),
        ], ["s_i_id"]),
    ]
