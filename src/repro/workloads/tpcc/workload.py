"""TPC-C input generation and transaction mix.

Implements the spec's input distributions (NURand, the standard 45/43/
4/4/4 mix) with the paper's experimental knobs:

* ``remote_item_prob`` — probability that each new-order item is
  supplied by a remote warehouse (spec: 1%; swept in Appendix E and
  forced to "all items remote" in Section 4.3.2);
* ``remote_payment_prob`` — probability of a remote customer in
  payment (spec: 15%);
* ``delay_range`` — the new-order-delay stock replenishment
  computation (Section 4.3.2);
* ``sync_remote`` — shared-nothing-*sync* program formulation;
* client affinity: worker *i* generates load for warehouse
  ``i mod W + 1`` only (Section 4.1.3).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.bench.worker import TxnFactory, TxnSpec, Worker
from repro.workloads.tpcc.procedures import warehouse_name
from repro.workloads.tpcc.schema import TpccScale

#: The standard TPC-C transaction mix.
STANDARD_MIX: tuple[tuple[str, float], ...] = (
    ("new_order", 0.45),
    ("payment", 0.43),
    ("order_status", 0.04),
    ("delivery", 0.04),
    ("stock_level", 0.04),
)

NEW_ORDER_ONLY: tuple[tuple[str, float], ...] = (("new_order", 1.0),)


def nurand(rng: random.Random, a: int, x: int, y: int, c: int) -> int:
    """The spec's non-uniform random distribution NURand(A, x, y)."""
    return (((rng.randint(0, a) | rng.randint(x, y)) + c)
            % (y - x + 1)) + x


@dataclass
class TpccWorkload:
    """Input generator bound to one database scale and knob set."""

    n_warehouses: int
    scale: TpccScale = field(default_factory=TpccScale)
    mix: tuple[tuple[str, float], ...] = STANDARD_MIX
    remote_item_prob: float = 0.01
    remote_payment_prob: float = 0.15
    invalid_item_prob: float = 0.01
    delay_range: tuple[float, float] | None = None
    sync_remote: bool = False
    seed: int = 42

    def __post_init__(self) -> None:
        rng = random.Random(f"tpcc-c/{self.seed}")
        # Per-run NURand C constants, as the spec requires.
        self._c_last = rng.randint(0, 255)
        self._c_cust = rng.randint(0, 1023)
        self._c_item = rng.randint(0, 8191)

    # ------------------------------------------------------------------
    # Spec input distributions at the configured scale
    # ------------------------------------------------------------------

    def _customer_id(self, rng: random.Random) -> int:
        value = nurand(rng, 1023, 1, 3000, self._c_cust)
        return (value - 1) % self.scale.customers_per_district + 1

    def _item_id(self, rng: random.Random) -> int:
        value = nurand(rng, 8191, 1, 100_000, self._c_item)
        return (value - 1) % self.scale.items + 1

    def _last_name(self, rng: random.Random) -> str:
        from repro.workloads.tpcc.loader import last_name

        value = nurand(rng, 255, 0, 999, self._c_last)
        return last_name(value % self.scale.last_names)

    def _district(self, rng: random.Random) -> int:
        return rng.randint(1, self.scale.districts)

    def _other_warehouse(self, rng: random.Random, w_id: int) -> int:
        if self.n_warehouses == 1:
            return w_id
        other = rng.randint(1, self.n_warehouses - 1)
        return other if other < w_id else other + 1

    # ------------------------------------------------------------------
    # Transaction input builders
    # ------------------------------------------------------------------

    def new_order_spec(self, rng: random.Random, w_id: int) -> TxnSpec:
        home = warehouse_name(w_id)
        d_id = self._district(rng)
        c_id = self._customer_id(rng)
        n_items = rng.randint(5, 15)
        invalid = rng.random() < self.invalid_item_prob
        items = []
        for position in range(n_items):
            if invalid and position == n_items - 1:
                i_id = self.scale.items + 10_000  # unused item: abort
            else:
                i_id = self._item_id(rng)
            if rng.random() < self.remote_item_prob:
                supply = warehouse_name(self._other_warehouse(rng, w_id))
            else:
                supply = home
            items.append((supply, i_id, rng.randint(1, 10)))
        return (home, "new_order",
                (w_id, d_id, c_id, items, self.sync_remote,
                 self.delay_range))

    def payment_spec(self, rng: random.Random, w_id: int) -> TxnSpec:
        home = warehouse_name(w_id)
        d_id = self._district(rng)
        amount = rng.uniform(1.0, 5000.0)
        if rng.random() < self.remote_payment_prob:
            c_w = warehouse_name(self._other_warehouse(rng, w_id))
        else:
            c_w = home
        c_d_id = self._district(rng)
        if rng.random() < 0.60:
            c_id, c_last = None, self._last_name(rng)
        else:
            c_id, c_last = self._customer_id(rng), None
        return (home, "payment",
                (w_id, d_id, amount, c_w, c_d_id, c_id, c_last))

    def order_status_spec(self, rng: random.Random, w_id: int) -> TxnSpec:
        d_id = self._district(rng)
        if rng.random() < 0.60:
            c_id, c_last = None, self._last_name(rng)
        else:
            c_id, c_last = self._customer_id(rng), None
        return (warehouse_name(w_id), "order_status",
                (d_id, c_id, c_last))

    def delivery_spec(self, rng: random.Random, w_id: int) -> TxnSpec:
        return (warehouse_name(w_id), "delivery",
                (w_id, rng.randint(1, 10)))

    def stock_level_spec(self, rng: random.Random, w_id: int) -> TxnSpec:
        return (warehouse_name(w_id), "stock_level",
                (self._district(rng), rng.randint(10, 20)))

    # ------------------------------------------------------------------
    # Worker factories
    # ------------------------------------------------------------------

    def home_warehouse(self, worker_id: int) -> int:
        """Client affinity: each worker drives one warehouse."""
        return worker_id % self.n_warehouses + 1

    def factory_for(self, worker_id: int) -> TxnFactory:
        w_id = self.home_warehouse(worker_id)
        builders = {
            "new_order": self.new_order_spec,
            "payment": self.payment_spec,
            "order_status": self.order_status_spec,
            "delivery": self.delivery_spec,
            "stock_level": self.stock_level_spec,
        }

        def factory(worker: Worker) -> TxnSpec:
            pick = worker.rng.random()
            cumulative = 0.0
            for txn_name, weight in self.mix:
                cumulative += weight
                if pick < cumulative:
                    return builders[txn_name](worker.rng, w_id)
            return builders[self.mix[-1][0]](worker.rng, w_id)

        return factory
