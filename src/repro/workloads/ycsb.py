"""YCSB with a multi_update transaction (paper Appendix C).

Each key is a reactor encapsulating a single-row ``kv`` relation with a
100-byte payload, matching the paper's setup: scale factor 4 (10,000
keys per scale factor), four containers of one executor each holding
contiguous key ranges, and a ``multi_update`` transaction that invokes
a read-modify-write ``update_one`` sub-transaction asynchronously on
each of 10 keys drawn from a zipfian distribution.

To keep transactions fork-join (so the cost model of Figure 3
applies), keys on remote executors are sorted before keys local to the
initiating reactor's executor — exactly the trick the paper describes.
"""

from __future__ import annotations

import random

from repro.core.database import ReactorDatabase
from repro.core.reactor import ReactorType
from repro.relational import make_schema, str_col
from repro.sim.rng import ZipfianGenerator

KEYS_PER_SCALE_FACTOR = 10_000
RECORD_SIZE = 100


def kv_schema():
    return [
        make_schema("kv", [str_col("key"), str_col("value")], ["key"]),
    ]


KEY_REACTOR = ReactorType("YcsbKey", kv_schema)


@KEY_REACTOR.procedure(read_only=True)
def read_one(ctx):
    """Point read of this key's record.

    Declared read-only: eligible for replica routing and — under
    ``mvocc`` / ``snapshot_reads`` deployments — served from an
    abort-free multi-version snapshot.
    """
    row = ctx.lookup("kv", ctx.my_name())
    return row["value"] if row else None


@KEY_REACTOR.procedure(read_only=True)
def multi_read(ctx, keys: list):
    """Asynchronously read every key in ``keys`` (read-only analogue
    of :func:`multi_update`; the read-heavy mix the mvocc ablation
    measures)."""
    for key in keys:
        yield ctx.call(key, "read_one")


@KEY_REACTOR.procedure
def update_one(ctx, delta: str):
    """Read-modify-write of this key's 100-byte record."""
    row = ctx.lookup("kv", ctx.my_name())
    if row is None:
        ctx.abort(f"missing key {ctx.my_name()!r}")
    new_value = (delta + row["value"])[:RECORD_SIZE]
    ctx.update("kv", ctx.my_name(), {"value": new_value})
    return new_value


@KEY_REACTOR.procedure
def multi_update(ctx, keys: list, delta: str):
    """Asynchronously update every key in ``keys``.

    The initiating reactor's own key (if present) updates inline;
    remote keys are dispatched asynchronously and collected by the
    implicit frame-end synchronization.
    """
    for key in keys:
        yield ctx.call(key, "update_one", delta)


def key_name(index: int) -> str:
    return f"key{index:06d}"


def declarations(scale_factor: int) -> list[tuple[str, ReactorType]]:
    n_keys = scale_factor * KEYS_PER_SCALE_FACTOR
    return [(key_name(i), KEY_REACTOR) for i in range(n_keys)]


def load(database: ReactorDatabase, scale_factor: int) -> None:
    for i in range(scale_factor * KEYS_PER_SCALE_FACTOR):
        name = key_name(i)
        database.load(name, "kv",
                      [{"key": name, "value": "x" * RECORD_SIZE}])


class YcsbWorkload:
    """multi_update input generation with zipfian key choice.

    ``executor_of(index)`` tells the generator which executor hosts a
    key so it can apply the paper's fork-join ordering (remote keys
    before local keys) and pick the initiating reactor among the 10
    chosen keys at random.
    """

    def __init__(self, scale_factor: int, theta: float,
                 n_containers: int, keys_per_txn: int = 10,
                 seed: int = 42, n_keys: int | None = None,
                 read_fraction: float = 0.0,
                 read_keys_per_txn: int | None = None) -> None:
        #: ``n_keys`` overrides the scale-factor-derived keyspace
        #: (tests and demos use small keyspaces).
        self.n_keys = n_keys or scale_factor * KEYS_PER_SCALE_FACTOR
        self.theta = theta
        self.keys_per_txn = keys_per_txn
        self.n_containers = n_containers
        self.keys_per_container = self.n_keys // n_containers
        #: Fraction of transactions issued as read-only ``multi_read``
        #: over the same zipfian key choice (0 keeps the classic
        #: all-``multi_update`` workload).
        self.read_fraction = read_fraction
        #: Keys per ``multi_read`` (defaults to ``keys_per_txn``); a
        #: wider read span models read-mostly analytics over the hot
        #: set — long validated read sets are exactly what multi-
        #: version snapshots remove.
        self.read_keys_per_txn = read_keys_per_txn or keys_per_txn
        self._rng = random.Random(f"ycsb/{seed}")
        self._zipf = ZipfianGenerator(self.n_keys, theta, self._rng)

    def container_of(self, index: int) -> int:
        return min(index // self.keys_per_container,
                   self.n_containers - 1)

    def next_txn(self, worker) -> tuple[str, str, tuple]:
        rng = worker.rng
        read_only = bool(self.read_fraction
                         and rng.random() < self.read_fraction)
        n_draws = self.read_keys_per_txn if read_only \
            else self.keys_per_txn
        # Draw zipfian keys and collapse duplicates: at extreme skew
        # ("5.0: a single reactor is accessed") most draws repeat the
        # hottest key, so the transaction touches fewer reactors —
        # which is exactly the effect the paper studies.
        chosen: list[int] = []
        seen: set[int] = set()
        for __ in range(n_draws):
            index = self._zipf.next()
            if index not in seen:
                seen.add(index)
                chosen.append(index)
        initiator = chosen[rng.randrange(len(chosen))]
        home = self.container_of(initiator)
        # Fork-join ordering: remote-container keys first, local last.
        remote = [i for i in chosen if self.container_of(i) != home]
        local = [i for i in chosen if self.container_of(i) == home]
        ordered = [key_name(i) for i in remote + local]
        if read_only:
            return (key_name(initiator), "multi_read", (ordered,))
        return (key_name(initiator), "multi_update",
                (ordered, f"u{worker.issued % 10}"))

    def factory_for(self, worker_id: int):
        return self.next_txn
