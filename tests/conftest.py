"""Shared fixtures: a small banking reactor application.

The ``bank`` fixture family gives most runtime/core tests a realistic
multi-reactor application without each test redefining schemas and
procedures.
"""

from __future__ import annotations

import pytest

from repro.core.database import ReactorDatabase
from repro.core.deployment import (
    shared_everything_with_affinity,
    shared_everything_without_affinity,
    shared_nothing,
)
from repro.core.reactor import ReactorType
from repro.relational import float_col, make_schema, str_col

N_ACCOUNTS = 6


def _account_schema():
    return [
        make_schema("savings",
                    [str_col("owner"), float_col("balance")],
                    ["owner"]),
    ]


ACCOUNT = ReactorType("TestAccount", _account_schema)


@ACCOUNT.procedure
def get_balance(ctx):
    row = ctx.lookup("savings", ctx.my_name())
    return row["balance"] if row else None


@ACCOUNT.procedure
def credit(ctx, amount):
    row = ctx.lookup("savings", ctx.my_name())
    if row is None:
        ctx.abort("no such account")
    new_balance = row["balance"] + amount
    if new_balance < 0:
        ctx.abort("insufficient funds")
    ctx.update("savings", ctx.my_name(), {"balance": new_balance})
    return new_balance


@ACCOUNT.procedure
def transfer(ctx, dst, amount):
    fut = yield ctx.call(dst, "credit", amount)
    yield ctx.call(ctx.my_name(), "credit", -amount)
    return (yield ctx.get(fut))


@ACCOUNT.procedure
def fan_out(ctx, dsts, amount):
    """Asynchronous credits to several accounts, debit self once."""
    for dst in dsts:
        yield ctx.call(dst, "credit", amount)
    yield ctx.call(ctx.my_name(), "credit", -amount * len(dsts))


@ACCOUNT.procedure
def double_call_same(ctx, dst):
    """A dangerous structure: two concurrent sub-txns on one reactor."""
    yield ctx.call(dst, "credit", 1.0)
    yield ctx.call(dst, "credit", 2.0)


@ACCOUNT.procedure
def busy_work(ctx, micros):
    yield ctx.compute(micros)
    return micros


def account_name(i: int) -> str:
    return f"acct{i}"


def make_bank(deployment) -> ReactorDatabase:
    database = ReactorDatabase(
        deployment,
        [(account_name(i), ACCOUNT) for i in range(N_ACCOUNTS)])
    for i in range(N_ACCOUNTS):
        database.load(account_name(i), "savings",
                      [{"owner": account_name(i), "balance": 100.0}])
    return database


@pytest.fixture
def bank_sn():
    """Shared-nothing bank: 3 containers x 1 executor."""
    return make_bank(shared_nothing(3))


@pytest.fixture
def bank_se_affinity():
    return make_bank(shared_everything_with_affinity(3))


@pytest.fixture
def bank_se_rr():
    return make_bank(shared_everything_without_affinity(3))


@pytest.fixture(params=["sn", "se_affinity", "se_rr"])
def bank_any(request):
    """The same application under each of the paper's deployments."""
    builders = {
        "sn": lambda: make_bank(shared_nothing(3)),
        "se_affinity": lambda: make_bank(
            shared_everything_with_affinity(3)),
        "se_rr": lambda: make_bank(
            shared_everything_without_affinity(3)),
    }
    return builders[request.param]()
