"""Static safety checker tests: call-site extraction, cycle and
fan-out detection, and behavior on the real paper workloads."""

from repro.analysis import analyze, extract_call_sites
from repro.analysis.static_safety import SELF_TARGET, UNKNOWN_TARGET
from repro.core.reactor import ReactorType
from repro.relational import int_col, make_schema


def make_type(name="T"):
    return ReactorType(name, lambda: [
        make_schema("kv", [int_col("k"), int_col("v")], ["k"]),
    ])


class TestExtraction:
    def test_literal_target_and_proc(self):
        rtype = make_type()

        @rtype.procedure
        def caller(ctx):
            fut = yield ctx.call("other", "do_thing", 1)
            yield ctx.get(fut)

        sites = extract_call_sites(rtype)
        assert len(sites) == 1
        assert sites[0].target == "other"
        assert sites[0].callee_proc == "do_thing"
        assert not sites[0].in_loop

    def test_self_call_recognized(self):
        rtype = make_type()

        @rtype.procedure
        def caller(ctx):
            yield ctx.call(ctx.my_name(), "do_thing")

        sites = extract_call_sites(rtype)
        assert sites[0].target == SELF_TARGET

    def test_dynamic_target_is_unknown(self):
        rtype = make_type()

        @rtype.procedure
        def caller(ctx, who):
            yield ctx.call(who, "do_thing")

        sites = extract_call_sites(rtype)
        assert sites[0].target == UNKNOWN_TARGET

    def test_loop_nesting_flagged(self):
        rtype = make_type()

        @rtype.procedure
        def caller(ctx, targets):
            for target in targets:
                yield ctx.call(target, "do_thing")

        assert extract_call_sites(rtype)[0].in_loop

    def test_respects_context_parameter_name(self):
        rtype = make_type()

        @rtype.procedure
        def caller(c, who):
            yield c.call(who, "do_thing")

        assert len(extract_call_sites(rtype)) == 1

    def test_non_call_methods_ignored(self):
        rtype = make_type()

        @rtype.procedure
        def caller(ctx):
            ctx.lookup("kv", 1)
            ctx.insert("kv", {"k": 2, "v": 2})

        assert extract_call_sites(rtype) == []


class TestDetection:
    def test_mutual_recursion_reported_as_cycle(self):
        rtype = make_type()

        @rtype.procedure
        def ping(ctx, other):
            fut = yield ctx.call(other, "pong", ctx.my_name())
            yield ctx.get(fut)

        @rtype.procedure
        def pong(ctx, origin):
            fut = yield ctx.call(origin, "ping", ctx.my_name())
            yield ctx.get(fut)

        report = analyze([rtype])
        assert report.cycles
        assert set(report.cycles[0].procedures) >= {"ping", "pong"}

    def test_self_recursion_via_my_name_is_not_a_cycle(self):
        rtype = make_type()

        @rtype.procedure
        def again(ctx, n):
            if n:
                yield ctx.call(ctx.my_name(), "again", n - 1)

        report = analyze([rtype])
        assert not report.cycles

    def test_loop_fanout_warned(self):
        rtype = make_type()

        @rtype.procedure
        def fan(ctx, targets):
            for target in targets:
                yield ctx.call(target, "do_thing")

        report = analyze([rtype])
        assert report.fanout_races
        assert report.fanout_races[0].procedures == ("fan",)

    def test_two_distinct_literals_not_warned(self):
        rtype = make_type()

        @rtype.procedure
        def two(ctx):
            yield ctx.call("alpha", "do_thing")
            yield ctx.call("beta", "do_thing")

        report = analyze([rtype])
        assert not report.fanout_races

    def test_two_unknown_targets_warned(self):
        rtype = make_type()

        @rtype.procedure
        def two(ctx, a, b):
            yield ctx.call(a, "do_thing")
            yield ctx.call(b, "do_thing")

        report = analyze([rtype])
        assert report.fanout_races

    def test_clean_type_passes(self):
        rtype = make_type()

        @rtype.procedure
        def local_only(ctx):
            ctx.insert("kv", {"k": 1, "v": 1})

        assert analyze([rtype]).ok()


class TestOnPaperWorkloads:
    def test_smallbank_fanouts_flagged_cycles_absent(self):
        from repro.workloads.smallbank import CUSTOMER

        report = analyze([CUSTOMER])
        flagged = {w.procedures[0] for w in report.fanout_races}
        # The multi-transfer loops fan out over runtime-chosen
        # destinations: exactly the shape the checker must flag (the
        # workload guarantees deduplicated destinations at runtime).
        assert "multi_transfer_fully_async" in flagged
        assert "multi_transfer_opt" in flagged

    def test_tpcc_batching_keeps_warnings_meaningful(self):
        from repro.workloads.tpcc import WAREHOUSE

        report = analyze([WAREHOUSE])
        flagged = {w.procedures[0] for w in report.fanout_races}
        # new_order fans out per-warehouse batches in a loop over a
        # runtime dict: flagged, and indeed only safe because batches
        # are grouped per target warehouse.
        assert "new_order" in flagged

    def test_exchange_has_no_cycles(self):
        from repro.workloads.exchange import EXCHANGE, PROVIDER

        report = analyze([EXCHANGE, PROVIDER])
        assert not report.cycles
