"""Sim-vs-threads execution backend equivalence.

The certify-then-measure contract (docs/backends.md): the same
deployment produces the same committed state on the virtual-time sim
backend and the wall-clock ``threads`` backend, and both runs pass the
formal certificates.  Interleavings legitimately differ — only
*committed outcomes* must agree — so these workloads are built to have
backend-independent final state: every logical operation is driven to
a committed conclusion (aborts are retried), and concurrent writes are
either commutative sums or single-writer-per-key.
"""

from __future__ import annotations

import pytest

from repro.core.database import ReactorDatabase
from repro.core.deployment import RangePlacement, shared_nothing
from repro.durability.config import DurabilityConfig
from repro.formal.audit import attach_recorder, certify_all
from repro.workloads import smallbank as sb
from repro.workloads import ycsb

N_CUSTOMERS = 8
N_CONTAINERS = 2
N_KEYS = 16
MAX_RETRIES = 200
#: Resubmit backoff per attempt.  Must exceed the threads backend's
#: inline-execution window (INLINE_DELAY_US): an immediate NO_WAIT
#: retry re-runs on the aborting thread and can re-hit the very lock
#: that refused it for the whole retry budget; deferring through the
#: timer lets the holder finish first.
RETRY_BACKOFF_US = 100.0


def _run_to_commit(database, ops):
    """Submit every ``(reactor, proc, args)`` op and drive each to a
    *committed* conclusion, resubmitting on abort.

    Retrying makes the committed-effect set identical on every backend
    and CC scheme: real-hardware interleavings may abort different
    transactions than the simulation, but each logical operation lands
    exactly once either way.
    """
    pending = {"n": len(ops)}

    def make_on_done(op, tries=MAX_RETRIES):
        def on_done(root, committed, reason, result):
            if committed:
                pending["n"] -= 1
                return
            assert tries > 0, f"op {op} aborted too often: {reason}"
            reactor, proc, args = op
            attempt = MAX_RETRIES - tries + 1
            database.scheduler.after(
                RETRY_BACKOFF_US * attempt,
                lambda: database.submit(
                    reactor, proc, *args,
                    on_done=make_on_done(op, tries - 1)))
        return on_done

    for op in ops:
        reactor, proc, args = op
        database.submit(reactor, proc, *args,
                        on_done=make_on_done(op))
    database.scheduler.run()
    assert pending["n"] == 0, f"{pending['n']} ops never committed"


def _smallbank_ops():
    """A deterministic op list touching every customer: commutative
    per-account sums plus cross-container transfers, so the final
    balances are order-independent."""
    ops = []
    for i in range(48):
        cust = sb.reactor_name(i % N_CUSTOMERS)
        if i % 3 == 0:
            ops.append((cust, "transact_saving", (10.0 + i,)))
        elif i % 3 == 1:
            ops.append((cust, "deposit_checking", (5.0 + i,)))
        else:
            other = sb.reactor_name((i + 3) % N_CUSTOMERS)
            ops.append(sb.multi_transfer_spec(
                "fully-async", cust, [other], 2.0))
    return ops


def _smallbank_state(backend, scheme, durability=None):
    deployment = shared_nothing(
        N_CONTAINERS, mpl=4, cc_scheme=scheme,
        placement=RangePlacement(N_CUSTOMERS // N_CONTAINERS),
        durability=durability, backend=backend)
    database = ReactorDatabase(deployment, sb.declarations(N_CUSTOMERS))
    sb.load(database, N_CUSTOMERS)
    attach_recorder(database)
    _run_to_commit(database, _smallbank_ops())
    state = {
        name: {
            table: sorted(
                (tuple(sorted(row.items()))
                 for row in database.table_rows(name, table)))
            for table in ("savings", "checking")
        }
        for name in database.reactor_names()
    }
    certificate = certify_all(database)
    total = sb.total_money(database, N_CUSTOMERS)
    database.close()
    return state, total, certificate


@pytest.mark.parametrize("scheme", ["occ", "2pl_nowait", "mvocc"])
def test_smallbank_state_matches_sim(scheme):
    sim_state, sim_total, sim_cert = _smallbank_state("sim", scheme)
    thr_state, thr_total, thr_cert = _smallbank_state("threads", scheme)
    assert sim_cert["ok"], sim_cert["failures"]
    assert thr_cert["ok"], thr_cert["failures"]
    assert thr_total == pytest.approx(sim_total)
    assert thr_state == sim_state


def test_smallbank_group_commit_durability():
    durability = DurabilityConfig(enabled=True, mode="group")
    sim_state, __, sim_cert = _smallbank_state(
        "sim", "occ", durability=durability)
    thr_state, __, thr_cert = _smallbank_state(
        "threads", "occ", durability=durability)
    assert sim_cert["ok"] and thr_cert["ok"]
    assert thr_state == sim_state


def _ycsb_state(backend):
    deployment = shared_nothing(
        N_CONTAINERS, mpl=4, cc_scheme="occ",
        placement=RangePlacement(N_KEYS // N_CONTAINERS),
        backend=backend)
    decls = [(ycsb.key_name(i), ycsb.KEY_REACTOR)
             for i in range(N_KEYS)]
    database = ReactorDatabase(deployment, decls)
    for i in range(N_KEYS):
        name = ycsb.key_name(i)
        database.load(name, "kv",
                      [{"key": name, "value": "x" * ycsb.RECORD_SIZE}])
    attach_recorder(database)
    # Exactly one (prepending, hence order-sensitive) update per key:
    # single-writer-per-key keeps the final image backend-independent.
    # multi_update fans the second half out through remote sub-calls.
    ops = [(ycsb.key_name(i), "update_one", (f"d{i:03d}",))
           for i in range(N_KEYS // 2)]
    ops.append((ycsb.key_name(0), "multi_update",
                ([ycsb.key_name(i)
                  for i in range(N_KEYS // 2, N_KEYS)], "bulk")))
    _run_to_commit(database, ops)
    state = {ycsb.key_name(i):
             database.table_rows(ycsb.key_name(i), "kv")
             for i in range(N_KEYS)}
    certificate = certify_all(database)
    database.close()
    return state, certificate


def test_ycsb_state_matches_sim():
    sim_state, sim_cert = _ycsb_state("sim")
    thr_state, thr_cert = _ycsb_state("threads")
    assert sim_cert["ok"], sim_cert["failures"]
    assert thr_cert["ok"], thr_cert["failures"]
    assert thr_state == sim_state
    # And the updates actually landed: every first-half key carries
    # its delta, every second-half key the bulk prefix.
    assert thr_state[ycsb.key_name(1)][0]["value"].startswith("d001")
    assert thr_state[ycsb.key_name(N_KEYS - 1)][0]["value"] \
        .startswith("bulk")
