"""Unit tests for the ``threads`` execution backend.

The integration story (same committed state as sim, certificates pass)
lives in ``test_backend_equivalence.py``; these tests pin the backend
primitives themselves: the registry, deployment-config validation,
queue/timer scheduling, quiesce accounting, error propagation,
thread-safe futures, lock guards, and the database-level intake and
lifecycle behaviour.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.database import ReactorDatabase
from repro.core.deployment import DeploymentConfig, shared_nothing
from repro.errors import DeploymentError, SimulationError
from repro.replication.config import ReplicationConfig
from repro.runtime.backend import SimBackend, backend_names, create_backend
from repro.runtime.futures import SimFuture, ThreadSafeFuture
from repro.runtime.threads import INLINE_DELAY_US, ThreadsBackend
from repro.sim.scheduler import SimScheduler
from repro.workloads import smallbank as sb


# ----------------------------------------------------------------------
# Registry and deployment config
# ----------------------------------------------------------------------

class TestBackendRegistry:
    def test_names(self):
        assert backend_names() == ("sim", "threads")

    def test_default_is_sim(self):
        deployment = shared_nothing(2)
        assert deployment.backend == "sim"
        backend = create_backend(deployment)
        assert isinstance(backend, SimBackend)
        assert isinstance(backend, SimScheduler)
        assert backend.name == "sim"

    def test_threads_selected_by_name(self):
        deployment = shared_nothing(2, backend="threads")
        backend = create_backend(deployment)
        assert isinstance(backend, ThreadsBackend)
        assert backend.name == "threads"
        assert backend.is_virtual is False
        assert backend.future_class is ThreadSafeFuture

    def test_unknown_backend_rejected_at_config(self):
        with pytest.raises(DeploymentError, match="backend"):
            shared_nothing(2, backend="gpu")

    def test_unknown_backend_rejected_at_create(self):
        class Stub:
            backend = "gpu"
        with pytest.raises(DeploymentError, match="gpu"):
            create_backend(Stub())

    def test_round_trip_preserves_backend(self):
        deployment = shared_nothing(2, backend="threads")
        data = deployment.to_dict()
        assert data["backend"] == "threads"
        restored = DeploymentConfig.from_dict(data)
        assert restored.backend == "threads"
        assert restored.to_dict() == data

    def test_threads_plus_replication_rejected(self):
        with pytest.raises(DeploymentError, match="replication"):
            shared_nothing(
                2, backend="threads",
                replication=ReplicationConfig(
                    replicas_per_container=1, mode="async"))


# ----------------------------------------------------------------------
# Scheduling, quiesce, errors
# ----------------------------------------------------------------------

@pytest.fixture
def backend():
    instance = ThreadsBackend()
    instance.attach(2)
    yield instance
    instance.shutdown()


class TestThreadsScheduling:
    def test_run_requires_attach(self):
        with pytest.raises(SimulationError, match="not attached"):
            ThreadsBackend().run()

    def test_attach_twice_rejected(self, backend):
        with pytest.raises(SimulationError, match="already attached"):
            backend.attach(2)

    def test_post_runs_on_named_container_thread(self, backend):
        seen = []
        backend.post(1, lambda: seen.append(
            threading.current_thread().name))
        backend.run()
        assert seen == ["repro-container-1"]
        assert backend.pending() == 0
        assert backend.events_dispatched >= 1

    def test_short_delay_executes_inline(self, backend):
        seen = []
        backend.after(INLINE_DELAY_US, seen.append, "inline")
        assert seen == ["inline"]  # before any run(): same thread

    def test_long_delay_fires_via_timer(self, backend):
        seen = []
        backend.after(5_000.0, seen.append, "timer")
        assert seen == []
        backend.run()
        assert seen == ["timer"]

    def test_timer_cancel_unblocks_run(self, backend):
        handle = backend.after(60_000_000.0, lambda: None)  # 60 s
        assert backend.pending() == 1
        handle.cancel()
        assert handle.cancelled
        backend.run()  # must not wait a minute
        assert backend.pending() == 0

    def test_run_until_ignores_later_timers(self, backend):
        seen = []
        handle = backend.after(60_000_000.0, seen.append, "far")
        start = time.monotonic()
        backend.run(until=backend.now + 20_000.0)  # 20 ms
        elapsed = time.monotonic() - start
        assert seen == []
        assert elapsed < 10.0
        handle.cancel()

    def test_run_until_waits_out_the_window(self, backend):
        start = time.monotonic()
        backend.run(until=backend.now + 30_000.0)
        assert time.monotonic() - start >= 0.025

    def test_worker_error_reraised_from_run(self, backend):
        def boom():
            raise RuntimeError("worker exploded")
        backend.post(0, boom)
        with pytest.raises(RuntimeError, match="worker exploded"):
            backend.run()
        backend.run()  # error consumed; quiesced again

    def test_now_is_monotonic_wall_clock(self, backend):
        first = backend.now
        time.sleep(0.002)
        assert backend.now > first

    def test_shutdown_idempotent(self):
        instance = ThreadsBackend()
        instance.attach(1)
        instance.shutdown()
        instance.shutdown()

    def test_admit_root_bound_and_shedding(self, backend):
        class StubExecutor:
            queue = [None] * 3
            ready = [None] * 2
        backend.root_admission_bound = 6
        assert backend.admit_root(StubExecutor()) is True
        backend.root_admission_bound = 5
        assert backend.admit_root(StubExecutor()) is False
        assert backend.shed_roots == 1

    def test_container_busy_and_queue_depths(self, backend):
        backend.post(0, time.sleep, 0.002)
        backend.run()
        busy = backend.container_busy_us()
        assert busy[0] >= 1_000.0
        assert set(backend.queue_depths()) == {-1, 0, 1}


class TestGuards:
    def test_state_guard_excludes_other_threads(self, backend):
        order = []

        def holder():
            with backend.state_guard():
                order.append("enter")
                time.sleep(0.02)
                order.append("exit")

        def contender():
            with backend.state_guard():
                order.append("second")

        backend.post(0, holder)
        time.sleep(0.005)
        backend.post(1, contender)
        backend.run()
        assert order == ["enter", "exit", "second"]

    def test_commit_guard_holds_participant_locks(self, backend):
        witnessed = []

        def committer():
            with backend.commit_guard([1, 0, 1]):
                witnessed.append(
                    [lock._is_owned()  # noqa: SLF001
                     for lock in backend._container_locks])

        backend.post(0, committer)
        backend.run()
        assert witnessed == [[True, True]]


# ----------------------------------------------------------------------
# Thread-safe futures
# ----------------------------------------------------------------------

class TestThreadSafeFuture:
    def _future(self):
        return ThreadSafeFuture(remote=True, subtxn_id=1,
                                target_reactor="acct")

    def test_is_a_sim_future(self):
        assert isinstance(self._future(), SimFuture)

    def test_cross_thread_resolve_wakes_wait(self):
        future = self._future()
        thread = threading.Thread(
            target=lambda: (time.sleep(0.01),
                            future.resolve(41, 1.0)))
        thread.start()
        assert future.wait(timeout=5.0) is True
        assert future.resolved
        assert future.value == 41
        thread.join()

    def test_wait_times_out_when_pending(self):
        assert self._future().wait(timeout=0.01) is False

    def test_waiter_added_after_resolve_fires_immediately(self):
        future = self._future()
        future.resolve("v", 2.0)
        seen = []
        future.add_waiter(lambda fut: seen.append(fut.value))
        assert seen == ["v"]

    def test_waiter_added_before_resolve_fires_on_resolve(self):
        future = self._future()
        seen = []
        future.add_waiter(lambda fut: seen.append(fut.value))
        future.resolve("later", 3.0)
        assert seen == ["later"]

    def test_fail_propagates_error_state(self):
        future = self._future()
        future.fail(ValueError("nope"), 1.0)
        assert future.wait(timeout=1.0) is True
        assert future.failed
        assert isinstance(future.error, ValueError)

    def test_relayed_waiter_runs_on_container_thread(self, backend):
        future = self._future()
        seen = []
        backend.add_waiter(
            future,
            lambda fut: seen.append(threading.current_thread().name),
            container=1)
        future.resolve("x", 0.0)
        backend.run()
        assert seen == ["repro-container-1"]


# ----------------------------------------------------------------------
# Database-level behaviour
# ----------------------------------------------------------------------

class TestDatabaseOnThreads:
    def _database(self, **kwargs):
        deployment = shared_nothing(2, backend="threads", **kwargs)
        database = ReactorDatabase(deployment, sb.declarations(4))
        sb.load(database, 4)
        return database

    def test_backend_name_and_close_idempotent(self):
        database = self._database()
        assert database.backend_name == "threads"
        assert isinstance(database.scheduler, ThreadsBackend)
        database.close()
        database.close()

    def test_migration_requires_sim(self):
        database = self._database()
        try:
            with pytest.raises(DeploymentError, match="sim"):
                database.migrate(sb.reactor_name(0), 1)
            with pytest.raises(DeploymentError, match="sim"):
                database.rebalance()
        finally:
            database.close()

    def test_backpressure_refusal_path(self):
        database = self._database()
        try:
            database.scheduler.root_admission_bound = 0
            outcomes = []

            def on_done(root, committed, reason, result):
                outcomes.append((committed, reason))

            root = database.submit(sb.reactor_name(0), "balance",
                                   on_done=on_done)
            database.scheduler.run()
            assert root.finished
            assert outcomes == [(False, outcomes[0][1])]
            assert "backpressure" in outcomes[0][1]
            assert database.scheduler.shed_roots == 1
        finally:
            database.close()

    def test_explicit_scheduler_overrides_config(self):
        deployment = shared_nothing(2, backend="threads")
        database = ReactorDatabase(deployment, sb.declarations(4),
                                   scheduler=SimScheduler())
        assert database.backend_name == "sim"
