"""Benchmark harness tests: metrics, workers, measurement engine."""

import pytest

from repro.bench.metrics import mean, percentile, stddev, summarize
from repro.bench.report import format_table, print_series
from repro.bench.harness import run_measurement, single_worker_latency
from repro.core.deployment import shared_nothing
from repro.runtime.transaction import TxnStats
from tests.conftest import make_bank


def stat(txn_id, end, committed=True, latency=10.0, user_abort=False):
    return TxnStats(
        txn_id=txn_id, procedure="p", reactor="r",
        committed=committed, abort_reason=None,
        start=end - latency, end=end,
        breakdown={"sync_execution": latency},
        user_abort=user_abort)


class TestStatistics:
    def test_mean_std(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        assert mean([]) == 0.0
        assert stddev([2.0, 4.0]) == pytest.approx(1.4142, rel=1e-3)
        assert stddev([5.0]) == 0.0

    def test_percentile(self):
        values = [float(i) for i in range(1, 101)]
        assert percentile(values, 50) == 50.0
        assert percentile(values, 99) == 99.0
        assert percentile([], 50) == 0.0


class TestSummarize:
    def test_window_filtering(self):
        stats = [stat(i, end=float(i)) for i in range(100)]
        summary = summarize(stats, 10.0, 60.0, n_epochs=5)
        assert summary.committed == 50

    def test_throughput_per_epoch(self):
        # 10 txns uniformly over a 100us window = 100K txn/sec.
        stats = [stat(i, end=5.0 + 10.0 * i) for i in range(10)]
        summary = summarize(stats, 0.0, 100.0, n_epochs=5)
        assert summary.throughput_tps == pytest.approx(100_000.0)
        assert summary.throughput_std == 0.0

    def test_abort_accounting(self):
        stats = [stat(1, 10.0), stat(2, 20.0, committed=False,
                                     user_abort=True),
                 stat(3, 30.0, committed=False)]
        summary = summarize(stats, 0.0, 100.0)
        assert summary.aborted == 2
        assert summary.user_aborts == 1
        assert summary.abort_rate == pytest.approx(2 / 3)

    def test_breakdown_averaged(self):
        stats = [stat(1, 10.0, latency=10.0),
                 stat(2, 20.0, latency=20.0)]
        summary = summarize(stats, 0.0, 100.0)
        assert summary.breakdown["sync_execution"] == 15.0

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            summarize([], 10.0, 10.0)

    def test_unit_properties(self):
        stats = [stat(1, 10.0, latency=1000.0)]
        summary = summarize(stats, 0.0, 1000.0, n_epochs=1)
        assert summary.latency_ms == pytest.approx(1.0)
        assert summary.throughput_ktps == pytest.approx(
            summary.throughput_tps / 1000.0)


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"],
                            [["a", 1.0], ["bb", 22.5]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "name" in lines[0]

    def test_print_series(self, capsys):
        print_series("t", "x", {"s1": {1: 1.0, 2: 2.0},
                                "s2": {1: 3.0}}, unit="us")
        out = capsys.readouterr().out
        assert "t [us]" in out
        assert "s1" in out and "s2" in out


class TestMeasurementEngine:
    def test_closed_loop_measurement(self):
        database = make_bank(shared_nothing(3))

        def factory(worker_id):
            return lambda worker: ("acct0", "get_balance", ())

        result = run_measurement(database, 1, factory,
                                 warmup_us=500.0, measure_us=5_000.0,
                                 n_epochs=5)
        assert result.summary.committed > 10
        assert result.summary.latency_us > 0
        assert result.window_us == 5_000.0
        # One executor busy, the others idle.
        utilization = result.utilization()
        assert max(utilization.values()) > 0

    def test_workers_include_client_costs_in_latency(self):
        database = make_bank(shared_nothing(3))

        def factory(worker_id):
            return lambda worker: ("acct0", "get_balance", ())

        result = run_measurement(database, 1, factory,
                                 warmup_us=200.0, measure_us=2_000.0)
        stats = result.raw_stats[-1]
        costs = database.costs
        floor = costs.input_gen + costs.client_send + \
            costs.client_receive
        assert stats.latency > floor
        assert stats.breakdown["commit_input_gen"] >= floor

    def test_multiple_workers_share_load(self):
        database = make_bank(shared_nothing(3))

        def factory(worker_id):
            name = f"acct{worker_id % 3}"
            return lambda worker: (name, "get_balance", ())

        result = run_measurement(database, 3, factory,
                                 warmup_us=200.0, measure_us=3_000.0)
        assert all(w.issued > 0 for w in result.workers)

    def test_single_worker_latency_filters_warmup(self):
        database = make_bank(shared_nothing(3))
        result = single_worker_latency(
            database, lambda w: ("acct0", "get_balance", ()),
            n_txns=20, warmup_txns=5)
        assert len(result.raw_stats) == 20

    def test_deterministic_given_seed(self):
        latencies = []
        for __ in range(2):
            database = make_bank(shared_nothing(3))

            def factory(worker_id):
                return lambda worker: ("acct0", "transfer",
                                       ("acct5", 1.0))

            result = run_measurement(database, 2, factory,
                                     warmup_us=200.0,
                                     measure_us=2_000.0, seed=9)
            latencies.append(result.summary.latency_us)
        assert latencies[0] == latencies[1]
