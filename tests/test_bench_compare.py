"""The CI perf-regression gate (tools/bench_compare.py)."""

import importlib.util
import json
from pathlib import Path

import pytest

SPEC = importlib.util.spec_from_file_location(
    "bench_compare",
    Path(__file__).parent.parent / "tools" / "bench_compare.py")
bench_compare = importlib.util.module_from_spec(SPEC)
SPEC.loader.exec_module(bench_compare)


def payload(tput_a=100.0, tput_b=200.0, extra_run=None):
    runs = [
        {"workload": "smallbank", "mode": "sync", "skew": 0.0,
         "throughput_tps": tput_a, "latency_us": 50.0,
         "p99_us": 80.0, "abort_rate": 0.01, "committed": 10,
         "fsyncs": 10},
        {"workload": "smallbank", "mode": "group", "skew": 0.0,
         "throughput_tps": tput_b, "latency_us": 30.0,
         "p99_us": 60.0, "abort_rate": 0.01, "committed": 20,
         "fsyncs": 2},
    ]
    if extra_run is not None:
        runs.append(extra_run)
    return {"runs": runs, "meta": {"benchmark": "x"}}


def write(dirpath, name, data):
    dirpath.mkdir(parents=True, exist_ok=True)
    (dirpath / f"BENCH_{name}.json").write_text(json.dumps(data))


@pytest.fixture
def dirs(tmp_path):
    return tmp_path / "baselines", tmp_path / "current"


def run_gate(dirs, names=("demo",), tolerance=0.20):
    baseline, current = dirs
    return bench_compare.main([
        *names,
        "--baseline-dir", str(baseline),
        "--current-dir", str(current),
        "--tolerance", str(tolerance),
    ])


class TestRowIdentity:
    def test_key_uses_only_configuration_axes(self):
        run = payload()["runs"][0]
        key = bench_compare.row_key(run)
        assert "workload=smallbank" in key
        assert "mode=sync" in key
        assert "skew=0.0" in key
        # Outputs (throughput, fsync counters) never leak into the
        # identity — they move with every measurement.
        assert "throughput" not in key
        assert "fsyncs" not in key

    def test_arrival_rate_identifies_serving_rows(self):
        """Open-loop serving rows at different arrival rates are
        distinct baseline entries, not one clobbered key."""
        low = {"workload": "smallbank", "phase": "open_loop",
               "arrival_rate": 100.0, "throughput_tps": 99.0}
        high = {**low, "arrival_rate": 400.0}
        assert "arrival_rate=100.0" in bench_compare.row_key(low)
        assert bench_compare.row_key(low) != \
            bench_compare.row_key(high)

    def test_latency_percentiles_are_report_only_context(self):
        for metric in ("p50_us", "p99_us", "p999_us"):
            assert metric in bench_compare.REPORT_METRICS
        assert bench_compare.GATE_METRIC not in \
            bench_compare.REPORT_METRICS

    def test_counter_drift_does_not_vanish_rows(self, dirs):
        baseline, current = dirs
        write(baseline, "demo", payload())
        drifted = payload()
        drifted["runs"][0]["fsyncs"] = 999
        drifted["runs"][0]["committed"] = 999
        write(current, "demo", drifted)
        assert run_gate(dirs) == 0


class TestGate:
    def test_identical_results_pass(self, dirs):
        baseline, current = dirs
        write(baseline, "demo", payload())
        write(current, "demo", payload())
        assert run_gate(dirs) == 0

    def test_within_band_regression_passes(self, dirs):
        baseline, current = dirs
        write(baseline, "demo", payload())
        write(current, "demo", payload(tput_a=85.0))  # -15%
        assert run_gate(dirs) == 0

    def test_out_of_band_regression_fails(self, dirs):
        baseline, current = dirs
        write(baseline, "demo", payload())
        write(current, "demo", payload(tput_a=70.0))  # -30%
        assert run_gate(dirs) == 1

    def test_tolerance_is_configurable(self, dirs):
        baseline, current = dirs
        write(baseline, "demo", payload())
        write(current, "demo", payload(tput_a=70.0))
        assert run_gate(dirs, tolerance=0.5) == 0

    def test_improvement_passes(self, dirs):
        baseline, current = dirs
        write(baseline, "demo", payload())
        write(current, "demo", payload(tput_a=500.0))
        assert run_gate(dirs) == 0

    def test_latency_is_report_only(self, dirs):
        baseline, current = dirs
        write(baseline, "demo", payload())
        worse = payload()
        for run in worse["runs"]:
            run["latency_us"] *= 10
        write(current, "demo", worse)
        assert run_gate(dirs) == 0

    def test_missing_baseline_row_fails(self, dirs):
        baseline, current = dirs
        write(baseline, "demo", payload(extra_run={
            "workload": "tpcc", "mode": "sync",
            "throughput_tps": 10.0}))
        write(current, "demo", payload())
        assert run_gate(dirs) == 1

    def test_new_row_is_tolerated(self, dirs):
        baseline, current = dirs
        write(baseline, "demo", payload())
        write(current, "demo", payload(extra_run={
            "workload": "tpcc", "mode": "sync",
            "throughput_tps": 10.0}))
        assert run_gate(dirs) == 0

    def test_missing_baseline_file_fails(self, dirs):
        __, current = dirs
        write(current, "demo", payload())
        assert run_gate(dirs) == 1

    def test_missing_current_file_fails(self, dirs):
        baseline, __ = dirs
        write(baseline, "demo", payload())
        assert run_gate(dirs) == 1


class TestUpdateAndSummary:
    def test_update_copies_current_over_baselines(self, dirs):
        baseline, current = dirs
        write(current, "demo", payload())
        assert bench_compare.main([
            "demo", "--update",
            "--baseline-dir", str(baseline),
            "--current-dir", str(current)]) == 0
        assert json.loads(
            (baseline / "BENCH_demo.json").read_text()) == payload()

    def test_github_step_summary_written(self, dirs, tmp_path,
                                         monkeypatch):
        baseline, current = dirs
        write(baseline, "demo", payload())
        write(current, "demo", payload())
        summary = tmp_path / "summary.md"
        monkeypatch.setenv("GITHUB_STEP_SUMMARY", str(summary))
        assert run_gate(dirs) == 0
        assert "Bench regression gate" in summary.read_text()

    def test_repo_baselines_exist_for_ci_matrix(self):
        """The four benches the CI gate runs all have committed
        baselines."""
        for name in ("ablation_replication", "ablation_migration",
                     "ablation_mvcc", "ablation_durability"):
            path = bench_compare.DEFAULT_BASELINE / \
                f"BENCH_{name}.json"
            assert path.exists(), path
            data = json.loads(path.read_text())
            assert data.get("runs"), name
            assert data["meta"]["config"].get("tiny") is True, \
                f"{name} baseline must be a --tiny run"
