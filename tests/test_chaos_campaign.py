"""End-to-end tests of the chaos campaign runner.

Covers the campaign loop (pass rate, reproducibility, bug catching),
episode isolation (back-to-back episodes share no state), the
combined-fault crash-recovery drill, and chaos-found runtime
regressions pinned as clean-run episodes.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

from repro.chaos import (
    CampaignConfig,
    EpisodeConfig,
    FaultAction,
    FaultSchedule,
    episode_config,
    episode_schedule,
    generate_schedule,
    run_campaign,
    run_episode,
)

TOOLS = Path(__file__).parent.parent / "tools"


def load_tool(name: str):
    spec = importlib.util.spec_from_file_location(name,
                                                  TOOLS / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


# ----------------------------------------------------------------------
# The campaign loop
# ----------------------------------------------------------------------

def test_tiny_campaign_passes_and_is_byte_reproducible():
    config = CampaignConfig(episodes=6, master_seed=7, tiny=True)
    first = run_campaign(config)
    second = run_campaign(config)
    assert first.pass_rate == 1.0
    assert first.to_json() == second.to_json()


def test_campaign_catches_and_shrinks_an_armed_bug():
    report = run_campaign(CampaignConfig(
        episodes=6, master_seed=11, tiny=True,
        inject_bug="drop_shipped_record", shrink=True,
        shrink_budget=40))
    assert report.pass_rate < 1.0
    assert report.repros, "a caught bug must yield a repro file"
    for repro in report.repros:
        assert repro["schema"] == "chaos-repro-v1"
        assert repro["expected_ok"] is False
        assert repro["failure_kinds"]
        # The repro must replay to the same failure from pure data.
        config = EpisodeConfig.from_dict(repro["config"])
        schedule = FaultSchedule.from_dict(repro["schedule"])
        result = run_episode(config, schedule)
        assert not result.ok
        assert set(repro["failure_kinds"]) <= set(result.failure_kinds)
    # Failing episodes exported their trace for the CI artifact.
    assert first_trace_is_valid_chrome_json(report)


def first_trace_is_valid_chrome_json(report) -> bool:
    assert report.traces
    name, payload = report.traces[0]
    assert name.endswith(".trace.json")
    events = json.loads(payload)["traceEvents"]
    return isinstance(events, list) and len(events) > 0


def test_episode_derivation_is_deterministic():
    for index in (0, 3, 9):
        first = episode_config(42, index, tiny=True)
        second = episode_config(42, index, tiny=True)
        assert first == second
        assert episode_schedule(first, tiny=True) == \
            episode_schedule(second, tiny=True)


def test_campaign_counters_use_catalogued_names():
    check_trace = load_tool("check_trace")
    report = run_campaign(CampaignConfig(episodes=2, master_seed=7,
                                         tiny=True))
    snapshot = report.metrics.snapshot()
    assert any(name.startswith("chaos_episodes_total")
               for name in snapshot)
    assert check_trace.check_metrics(snapshot) == []


# ----------------------------------------------------------------------
# Episode isolation (satellite: no cross-episode state)
# ----------------------------------------------------------------------

def test_back_to_back_episodes_are_identical():
    """Two runs of one episode in the same process must agree on the
    full result dict — recorder attach/detach and telemetry teardown
    leave nothing behind that could bleed into the next episode."""
    config = episode_config(7, 4, tiny=True)
    schedule = episode_schedule(config, tiny=True)
    first = run_episode(config, schedule)
    second = run_episode(config, schedule)
    assert first.to_dict() == second.to_dict()
    assert first.digest == second.digest


def test_interleaved_episodes_do_not_contaminate_each_other():
    config_a = episode_config(7, 0, tiny=True)
    config_b = episode_config(7, 1, tiny=True)
    schedule_a = episode_schedule(config_a, tiny=True)
    schedule_b = episode_schedule(config_b, tiny=True)
    baseline_a = run_episode(config_a, schedule_a).to_dict()
    run_episode(config_b, schedule_b)
    assert run_episode(config_a, schedule_a).to_dict() == baseline_a


# ----------------------------------------------------------------------
# Combined faults (satellite: crash during in-flight migration with a
# sync replica)
# ----------------------------------------------------------------------

def test_crash_image_during_inflight_migration_with_sync_replica():
    config = EpisodeConfig(
        workload="smallbank", cc_scheme="occ", durability_mode="group",
        replication_mode="sync", replicas=1, n_containers=2,
        n_txns=24, txn_gap_us=25.0, seed=1234)
    schedule = FaultSchedule(seed=1234, horizon_us=config.horizon_us,
                             actions=(
        FaultAction(at_us=200.0, kind="migrate",
                    params=(("dst", 1), ("reactor_index", 0))),
        # Copy + flip span a handful of microseconds: this crash image
        # is taken while the migration is in flight.
        FaultAction(at_us=201.0, kind="crash_image", params=()),
        FaultAction(at_us=420.0, kind="crash_image", params=()),
    ))
    result = run_episode(config, schedule)
    assert result.ok, result.failures
    assert result.injection["applied"].get("migrate") == 1
    assert result.injection["applied"].get("crash_image") == 2
    crash = result.certificates["crash_recovery"]
    assert crash["enabled"] and crash["ok"]
    assert crash["images"] == 2
    migration = result.certificates["migration"]
    assert migration["enabled"] and migration["ok"]


# ----------------------------------------------------------------------
# Chaos-found runtime regressions, pinned as clean-run episodes
# ----------------------------------------------------------------------

def test_migration_off_promoted_container_routes_to_destination():
    """Found by the campaign (master seed 7, tiny, episode 20): after
    a crash+promote, the promoted container kept resolving sub-calls
    through its shadow table, so a later migration off it left writes
    landing in the abandoned source copy (src_quiet violation)."""
    config = EpisodeConfig(
        workload="ycsb", cc_scheme="mvocc", durability_mode="async",
        replication_mode="sync", replicas=1, snapshot_reads=True,
        n_containers=2, n_txns=24, txn_gap_us=25.0, seed=420705245)
    schedule = FaultSchedule(seed=420705245,
                             horizon_us=config.horizon_us, actions=(
        FaultAction(at_us=41.422, kind="crash_promote",
                    params=(("container", 1),)),
        FaultAction(at_us=296.268, kind="migrate",
                    params=(("dst", 0), ("reactor_index", 29))),
    ))
    result = run_episode(config, schedule)
    assert result.ok, result.failures


def test_migration_onto_promoted_container_certifies():
    """Found by the campaign (master seed 42, episode 8): a reactor
    migrated *onto* a promoted container is a live reactor, not a
    shadow — the replication certificate must scope its state check to
    the container's current residents."""
    config = EpisodeConfig(
        workload="smallbank", cc_scheme="2pl_nowait",
        durability_mode="group", replication_mode="async", replicas=1,
        n_containers=2, n_txns=32, txn_gap_us=25.0, seed=99)
    schedule = FaultSchedule(seed=99, horizon_us=config.horizon_us,
                             actions=(
        FaultAction(at_us=150.0, kind="crash_promote",
                    params=(("container", 1),)),
        FaultAction(at_us=400.0, kind="migrate",
                    params=(("dst", 1), ("reactor_index", 0))),
    ))
    result = run_episode(config, schedule)
    assert result.ok, result.failures
    assert result.injection["applied"].get("migrate") == 1


def test_destination_failover_after_flip_tolerated():
    """Found by the campaign (master seed 42, episode 3): killing the
    destination container after a completed migration replaces its
    log; the migration certificate reports log_checked=false instead
    of failing the frozen replay."""
    config = EpisodeConfig(
        workload="ycsb", cc_scheme="occ", durability_mode="group",
        replication_mode="sync", replicas=1, n_containers=2,
        n_txns=32, txn_gap_us=25.0, seed=5)
    schedule = FaultSchedule(seed=5, horizon_us=config.horizon_us,
                             actions=(
        FaultAction(at_us=200.0, kind="migrate",
                    params=(("dst", 1), ("reactor_index", 0))),
        FaultAction(at_us=600.0, kind="crash_promote",
                    params=(("container", 1),)),
    ))
    result = run_episode(config, schedule)
    assert result.ok, result.failures
    migrations = [entry for entry
                  in result.certificates["migration"]["migrations"]
                  if entry["state"] == "done"
                  and not entry["superseded"]]
    assert migrations and all(not entry["log_checked"]
                              for entry in migrations)


# ----------------------------------------------------------------------
# Skipped actions stay deterministic
# ----------------------------------------------------------------------

def test_inapplicable_actions_are_skipped_not_errored():
    config = EpisodeConfig(workload="smallbank", n_containers=2,
                           n_txns=8, seed=3)  # no replication/durability
    spec = config.schedule_spec()
    schedule = generate_schedule(3, spec).replace_actions([
        FaultAction(at_us=50.0, kind="crash_promote",
                    params=(("container", 0),)),
        FaultAction(at_us=60.0, kind="lag_spike",
                    params=(("container", 0), ("extra_us", 100.0))),
        FaultAction(at_us=70.0, kind="rebalance", params=()),
    ])
    result = run_episode(config, schedule)
    assert result.ok, result.failures
    assert result.injection["skipped"].get("crash_promote") == 1
    assert result.injection["skipped"].get("lag_spike") == 1
    assert result.injection["applied"].get("rebalance") == 1
