"""Replay the committed chaos regression corpus.

Every ``tests/chaos_seeds/*.json`` file is a minimal
``(seed, config, schedule)`` triple minted by the campaign shrinker
from a caught failure (see ``docs/chaos.md``).  Each one must

* still reproduce its recorded failure kinds when replayed with the
  bug toggle armed (the harness keeps catching what it caught), and
* pass cleanly with the toggle disarmed (the schedule itself is
  benign — the bug, not the faults, is what fails).

Adding a file here pins a failure forever; the campaign CLI writes
ready-to-commit files with ``--seeds-dir``.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.chaos import EpisodeConfig, FaultSchedule, run_episode

SEEDS_DIR = Path(__file__).parent / "chaos_seeds"
SEED_FILES = sorted(SEEDS_DIR.glob("*.json"))


def load_repro(path: Path) -> dict:
    data = json.loads(path.read_text())
    assert data["schema"] == "chaos-repro-v1"
    return data


def test_corpus_covers_every_bug_toggle():
    assert len(SEED_FILES) >= 3
    armed = {load_repro(path)["config"]["inject_bug"]
             for path in SEED_FILES}
    assert {"ack_before_flush", "drop_shipped_record",
            "drop_parked_roots"} <= armed


@pytest.mark.parametrize("path", SEED_FILES,
                         ids=[path.stem for path in SEED_FILES])
def test_repro_replays_to_its_recorded_failure(path):
    repro = load_repro(path)
    config = EpisodeConfig.from_dict(repro["config"])
    schedule = FaultSchedule.from_dict(repro["schedule"])
    result = run_episode(config, schedule)
    assert result.ok == repro["expected_ok"]
    assert set(repro["failure_kinds"]) <= set(result.failure_kinds), (
        f"{path.name}: expected {repro['failure_kinds']}, "
        f"got {result.failure_kinds}")


@pytest.mark.parametrize("path", SEED_FILES,
                         ids=[path.stem for path in SEED_FILES])
def test_repro_passes_with_the_bug_disarmed(path):
    repro = load_repro(path)
    config = EpisodeConfig.from_dict(repro["config"])
    assert config.inject_bug is not None, (
        f"{path.name}: corpus entries arm a deliberate bug toggle")
    schedule = FaultSchedule.from_dict(repro["schedule"])
    result = run_episode(config.without_bug(), schedule)
    assert result.ok, (
        f"{path.name}: clean replay failed: {result.failure_kinds}")
