"""Property tests for the chaos schedule generator and shrinker.

The schedule layer is pure data — generation is a deterministic
function of ``(seed, spec)``, serialization round-trips through JSON,
and the shrinker only ever removes or retimes actions — so all three
contracts are checked exhaustively with hypothesis, no simulation
needed.
"""

from __future__ import annotations

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos import (
    FAULT_KINDS,
    FaultAction,
    FaultSchedule,
    ScheduleSpec,
    generate_schedule,
    shrink_schedule,
)
from repro.chaos.schedule import _applicable_kinds


def spec_strategy():
    return st.builds(
        ScheduleSpec,
        n_containers=st.integers(min_value=1, max_value=4),
        horizon_us=st.floats(min_value=100.0, max_value=5000.0,
                             allow_nan=False, allow_infinity=False),
        replication=st.booleans(),
        durability=st.booleans(),
        migration=st.booleans(),
        min_actions=st.integers(min_value=0, max_value=3),
        max_actions=st.integers(min_value=3, max_value=8),
    )


seeds = st.integers(min_value=0, max_value=2**31 - 1)


# ----------------------------------------------------------------------
# Generation
# ----------------------------------------------------------------------

@settings(max_examples=100, deadline=None)
@given(seed=seeds, spec=spec_strategy())
def test_generation_is_deterministic_per_seed(seed, spec):
    first = generate_schedule(seed, spec)
    second = generate_schedule(seed, spec)
    assert first == second
    assert first.to_dict() == second.to_dict()


@settings(max_examples=100, deadline=None)
@given(seed=seeds, spec=spec_strategy())
def test_generated_actions_respect_the_spec(seed, spec):
    schedule = generate_schedule(seed, spec)
    allowed = set(_applicable_kinds(spec))
    assert allowed <= set(FAULT_KINDS)
    assert spec.min_actions <= len(schedule.actions) \
        <= max(spec.min_actions, spec.max_actions)
    times = [action.at_us for action in schedule.actions]
    assert times == sorted(times)
    for action in schedule.actions:
        assert action.kind in allowed
        assert 0 < action.at_us <= 1.1 * spec.horizon_us


@settings(max_examples=100, deadline=None)
@given(seed=seeds, spec=spec_strategy())
def test_schedule_round_trips_through_json(seed, spec):
    schedule = generate_schedule(seed, spec)
    wire = json.dumps(schedule.to_dict(), sort_keys=True)
    back = FaultSchedule.from_dict(json.loads(wire))
    assert back == schedule
    # And the round-trip is a fixpoint at the byte level.
    assert json.dumps(back.to_dict(), sort_keys=True) == wire


def test_different_seeds_draw_different_schedules():
    spec = ScheduleSpec(n_containers=3, horizon_us=1000.0,
                        replication=True, durability=True)
    schedules = {generate_schedule(seed, spec).to_dict().__repr__()
                 for seed in range(20)}
    assert len(schedules) > 1


# ----------------------------------------------------------------------
# Shrinking (synthetic predicates — no simulation)
# ----------------------------------------------------------------------

def _actions(n):
    return [FaultAction(at_us=float(10 * (i + 1)), kind="rebalance",
                        params=(("tag", i),))
            for i in range(n)]


@settings(max_examples=50, deadline=None)
@given(n=st.integers(min_value=1, max_value=8),
       culprits=st.sets(st.integers(min_value=0, max_value=7),
                        min_size=1, max_size=3))
def test_shrink_preserves_reproducibility_and_is_minimal(n, culprits):
    """For a predicate 'all culprit actions present', the shrinker must
    return exactly the culprit subset (the unique minimal repro)."""
    culprits = {c % n for c in culprits}
    schedule = FaultSchedule(seed=1, horizon_us=100.0,
                             actions=tuple(_actions(n)))
    needed = {schedule.actions[i] for i in culprits}

    def reproduces(candidate: FaultSchedule) -> bool:
        return needed <= set(candidate.actions)

    result = shrink_schedule(schedule, reproduces, max_episodes=200,
                             snap_gap_us=1000.0)
    assert reproduces(result.schedule)
    assert set(result.schedule.actions) == needed
    assert result.minimal


def test_shrink_to_empty_when_failure_is_unconditional():
    schedule = FaultSchedule(seed=1, horizon_us=100.0,
                             actions=tuple(_actions(4)))
    result = shrink_schedule(schedule, lambda candidate: True,
                             max_episodes=100)
    assert result.schedule.actions == ()


def test_shrink_respects_the_episode_budget():
    schedule = FaultSchedule(seed=1, horizon_us=100.0,
                             actions=tuple(_actions(8)))
    calls = {"n": 0}

    def reproduces(candidate: FaultSchedule) -> bool:
        calls["n"] += 1
        return len(candidate.actions) >= 6

    result = shrink_schedule(schedule, reproduces, max_episodes=5)
    assert calls["n"] <= 5
    assert reproduces(result.schedule)


@settings(max_examples=30, deadline=None)
@given(seed=seeds)
def test_shrunk_schedules_still_round_trip(seed):
    spec = ScheduleSpec(n_containers=3, horizon_us=1200.0,
                        replication=True, durability=True,
                        min_actions=3, max_actions=6)
    schedule = generate_schedule(seed, spec)
    if not schedule.actions:
        return
    keep = schedule.actions[0]

    result = shrink_schedule(
        schedule, lambda c: keep in c.actions, max_episodes=100)
    wire = json.dumps(result.schedule.to_dict(), sort_keys=True)
    assert FaultSchedule.from_dict(json.loads(wire)) == result.schedule
