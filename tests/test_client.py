"""The unified Client surface: LocalClient, as_client, submissions."""

from __future__ import annotations

import pytest

from repro.client import (
    Client,
    LocalClient,
    Outcome,
    Submission,
    TcpClient,
    as_client,
)
from repro.core.database import ReactorDatabase
from repro.core.deployment import RangePlacement, shared_nothing
from repro.errors import TransactionAbort
from repro.serving.protocol import Overloaded
from repro.workloads import smallbank as sb

N_CUSTOMERS = 4


@pytest.fixture
def database():
    deployment = shared_nothing(2, mpl=4,
                                placement=RangePlacement(2))
    db = ReactorDatabase(deployment, sb.declarations(N_CUSTOMERS))
    sb.load(db, N_CUSTOMERS)
    yield db
    db.close()


def test_as_client_wraps_database(database):
    client = as_client(database)
    assert isinstance(client, LocalClient)
    assert client.database is database
    # Idempotent: a client passes through unchanged.
    assert as_client(client) is client


def test_both_implementations_satisfy_protocol(database):
    assert isinstance(LocalClient(database), Client)
    assert isinstance(TcpClient("127.0.0.1", 1), Client)


def test_local_submit_resolves_on_drain(database):
    client = LocalClient(database).connect()
    sub = client.submit(sb.reactor_name(0), "deposit_checking", 10.0)
    assert not sub.done
    client.drain()
    assert sub.done and sub.outcome.committed
    client.close()  # borrows the database: close is a no-op
    assert client.call(sb.reactor_name(0), "balance",
                       read_only=True) is not None


def test_local_submit_many(database):
    client = LocalClient(database)
    subs = client.submit_many(
        [(sb.reactor_name(i % N_CUSTOMERS), "transact_saving",
          (float(i),)) for i in range(8)])
    client.drain()
    assert all(s.outcome.committed for s in subs)


def test_local_abort_surfaces_reason(database):
    client = LocalClient(database)
    # Debiting far more than the savings balance aborts in-procedure.
    sub = client.submit(sb.reactor_name(0), "transact_saving",
                        -1_000_000.0)
    client.drain()
    outcome = sub.outcome
    assert not outcome.committed
    assert "insufficient savings" in outcome.reason
    assert not outcome.shed
    with pytest.raises(TransactionAbort):
        outcome.unwrap()


def test_on_done_callback_runs_at_resolution(database):
    client = LocalClient(database)
    seen = []
    client.submit(sb.reactor_name(1), "deposit_checking", 5.0,
                  on_done=seen.append)
    assert not seen
    client.drain()
    assert len(seen) == 1 and seen[0].committed


def test_submission_wait_times_out():
    with pytest.raises(TimeoutError):
        Submission().wait(timeout=0.01)


def test_submission_resolves_exactly_once():
    sub = Submission()
    first = Outcome(True, result=1)
    sub.resolve(first)
    sub.resolve(Outcome(False, reason="late"))
    assert sub.outcome is first


def test_late_callback_fires_immediately():
    sub = Submission()
    sub.resolve(Outcome(True))
    seen = []
    sub.add_done_callback(seen.append)
    assert seen == [sub.outcome]


def test_shed_outcome_unwraps_to_overloaded():
    outcome = Outcome(False, reason="admission bound reached",
                      error_code="overloaded", retry_after_us=1500.0)
    assert outcome.shed
    with pytest.raises(Overloaded) as info:
        outcome.unwrap()
    assert info.value.retry_after_us == 1500.0


def test_harness_accepts_client(database):
    """run_measurement takes a Client (the migrated signature) and
    produces the same kind of summary it did for a bare database."""
    from repro.bench.harness import run_measurement

    client = LocalClient(database)
    spec = (sb.reactor_name(0), "transact_saving", (1.0,))
    result = run_measurement(client, n_workers=2,
                             txn_factory_for=lambda i: lambda w: spec,
                             warmup_us=5_000.0, measure_us=20_000.0,
                             n_epochs=2)
    assert result.summary.throughput_tps > 0
