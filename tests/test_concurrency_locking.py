"""Two-phase locking: lock modes, NO_WAIT/WAIT_DIE policies, wounds,
phantom protection via structure locks, and the scheme registry."""

import pytest

from repro.concurrency.base import (
    BUILTIN_CC_SCHEMES,
    PassthroughCC,
    cc_scheme_names,
    create_cc_scheme,
)
from repro.concurrency.coordinator import TwoPhaseCommit
from repro.concurrency.locking import LockingCC
from repro.concurrency.tid import EpochManager
from repro.errors import (
    DeadlockAvoidanceAbort,
    DeploymentError,
    LockConflictAbort,
    WoundAbort,
)
from repro.relational.predicate import col
from repro.relational.schema import (
    IndexSpec,
    float_col,
    int_col,
    make_schema,
)
from repro.relational.table import Table


@pytest.fixture
def table():
    # "v" is indexed (updates changing it restructure by_v and take the
    # index's structure lock); "w" is not (updates to it need only the
    # record lock).
    schema = make_schema(
        "t", [int_col("id"), float_col("v"), float_col("w")], ["id"],
        [IndexSpec("by_v", ("v",), ordered=True)])
    table = Table(schema)
    for i in range(5):
        table.load_row({"id": i, "v": float(i), "w": 0.0})
    return table


@pytest.fixture
def nowait():
    return LockingCC(0, EpochManager(), policy="no_wait")


@pytest.fixture
def waitdie():
    return LockingCC(0, EpochManager(), policy="wait_die")


def commit(manager, session, now=1.0):
    return TwoPhaseCommit([(manager, session)]).commit(now)


class TestRegistry:
    def test_builtins_registered(self):
        assert set(BUILTIN_CC_SCHEMES) <= set(cc_scheme_names())

    @pytest.mark.parametrize("name,cls", [
        ("occ", None), ("none", PassthroughCC),
        ("2pl_nowait", LockingCC), ("2pl_waitdie", LockingCC)])
    def test_create(self, name, cls):
        manager = create_cc_scheme(name, 3, EpochManager())
        assert manager.container_id == 3
        if cls is not None:
            assert isinstance(manager, cls)

    def test_unknown_scheme_rejected(self):
        with pytest.raises(DeploymentError):
            create_cc_scheme("clairvoyant", 0, EpochManager())


class TestSharedExclusive:
    def test_two_readers_coexist(self, table, nowait):
        s1 = nowait.begin_session(1)
        s2 = nowait.begin_session(2)
        assert s1.read(table, (1,))[0]["v"] == 1.0
        assert s2.read(table, (1,))[0]["v"] == 1.0
        assert commit(nowait, s1).committed
        assert commit(nowait, s2).committed

    def test_writer_blocks_reader(self, table, nowait):
        s1 = nowait.begin_session(1)
        s1.update(table, (1,), {"v": 10.0})
        s2 = nowait.begin_session(2)
        with pytest.raises(LockConflictAbort):
            s2.read(table, (1,))

    def test_reader_blocks_writer(self, table, nowait):
        s1 = nowait.begin_session(1)
        s1.read(table, (1,))
        s2 = nowait.begin_session(2)
        with pytest.raises(LockConflictAbort):
            s2.update(table, (1,), {"v": 10.0})
        assert nowait.stats.lock_conflicts == 1

    def test_upgrade_when_sole_reader(self, table, nowait):
        s1 = nowait.begin_session(1)
        s1.read(table, (1,))
        s1.update(table, (1,), {"v": 10.0})  # S -> X on the same record
        assert commit(nowait, s1).committed
        assert table.get_record((1,)).value["v"] == 10.0

    def test_locks_released_after_commit(self, table, nowait):
        s1 = nowait.begin_session(1)
        s1.update(table, (1,), {"v": 10.0})
        assert commit(nowait, s1).committed
        assert nowait.locks.held_count() == 0
        s2 = nowait.begin_session(2)
        s2.update(table, (1,), {"v": 20.0})
        assert commit(nowait, s2).committed

    def test_locks_released_after_abort(self, table, nowait):
        s1 = nowait.begin_session(1)
        s1.update(table, (1,), {"v": 10.0})
        TwoPhaseCommit([(nowait, s1)]).abort()
        assert nowait.locks.held_count() == 0
        assert table.get_record((1,)).value["v"] == 1.0

    def test_disjoint_writers_coexist(self, table, nowait):
        # Updates to a non-indexed column of different records need
        # only their record locks: no conflict.
        s1 = nowait.begin_session(1)
        s2 = nowait.begin_session(2)
        s1.update(table, (1,), {"w": 10.0})
        s2.update(table, (2,), {"w": 20.0})
        assert commit(nowait, s1).committed
        assert commit(nowait, s2).committed

    def test_indexed_column_writers_conflict_on_index(self, table,
                                                      nowait):
        # Changing an indexed key restructures the index, so even
        # disjoint-record writers conflict on its structure lock
        # (conservative, like OCC's per-index version check for scans).
        s1 = nowait.begin_session(1)
        s2 = nowait.begin_session(2)
        s1.update(table, (1,), {"v": 10.0})
        with pytest.raises(LockConflictAbort):
            s2.update(table, (2,), {"v": 20.0})


class TestPhantomProtection:
    def test_insert_conflicts_with_scan(self, table, nowait):
        s1 = nowait.begin_session(1)
        s1.scan(table, col("v") >= 0.0)  # S structure lock on table
        s2 = nowait.begin_session(2)
        with pytest.raises(LockConflictAbort):
            s2.insert(table, {"id": 100, "v": 100.0, "w": 0.0})

    def test_read_miss_guards_against_insert(self, table, nowait):
        s1 = nowait.begin_session(1)
        assert s1.read(table, (100,))[0] is None  # S structure lock
        s2 = nowait.begin_session(2)
        with pytest.raises(LockConflictAbort):
            s2.insert(table, {"id": 100, "v": 1.0, "w": 0.0})

    def test_concurrent_inserts_same_key_conflict(self, table, nowait):
        s1 = nowait.begin_session(1)
        s1.insert(table, {"id": 100, "v": 1.0, "w": 0.0})
        s2 = nowait.begin_session(2)
        with pytest.raises(LockConflictAbort):
            s2.insert(table, {"id": 101, "v": 2.0, "w": 0.0})  # table X lock held

    def test_index_scan_vs_key_change_update(self, table, nowait):
        s1 = nowait.begin_session(1)
        s1.scan(table, index="by_v", low=(0.0,), high=(10.0,))
        s2 = nowait.begin_session(2)
        # Changing v moves the row inside by_v: needs that index's
        # structure lock, which the scanner holds shared.
        with pytest.raises(LockConflictAbort):
            s2.update(table, (4,), {"v": 99.0})

    def test_serial_insert_then_scan_ok(self, table, nowait):
        s1 = nowait.begin_session(1)
        s1.insert(table, {"id": 100, "v": 100.0, "w": 0.0})
        assert commit(nowait, s1).committed
        s2 = nowait.begin_session(2)
        rows = s2.scan(table, col("v") >= 0.0).rows
        assert len(rows) == 6
        assert commit(nowait, s2).committed


class TestWaitDie:
    def test_younger_requester_dies(self, table, waitdie):
        s_old = waitdie.begin_session(1)
        s_old.update(table, (1,), {"v": 10.0})
        s_young = waitdie.begin_session(2)
        with pytest.raises(DeadlockAvoidanceAbort):
            s_young.update(table, (1,), {"v": 20.0})
        assert waitdie.stats.deadlock_avoidance == 1
        assert commit(waitdie, s_old).committed

    def test_older_requester_wounds_younger_holder(self, table, waitdie):
        s_young = waitdie.begin_session(2)
        s_young.update(table, (1,), {"v": 20.0})
        s_old = waitdie.begin_session(1)
        s_old.update(table, (1,), {"v": 10.0})  # wounds txn 2
        assert s_young.wounded
        assert waitdie.stats.wounds == 1
        # The victim aborts at its next data operation...
        with pytest.raises(WoundAbort):
            s_young.read(table, (0,))
        # ...or at commit-time validation.
        assert not commit(waitdie, s_young).committed
        # The wounder commits; the victim's write never installed.
        assert commit(waitdie, s_old).committed
        assert table.get_record((1,)).value["v"] == 10.0

    def test_wound_releases_all_victim_locks(self, table, waitdie):
        s_young = waitdie.begin_session(2)
        s_young.update(table, (1,), {"w": 20.0})
        s_young.read(table, (3,))
        s_old = waitdie.begin_session(1)
        s_old.update(table, (1,), {"w": 10.0})
        # The victim's unrelated read lock is gone too: a third, even
        # younger transaction can now write record 3.
        s3 = waitdie.begin_session(3)
        s3.update(table, (3,), {"w": 30.0})
        assert commit(waitdie, s3).committed
        assert commit(waitdie, s_old).committed

    def test_wound_grant_keeps_mutual_exclusion(self, table, waitdie):
        # Regression: wounding the sole holder empties (and drops) the
        # lock entry; the wounder's grant must land back in the lock
        # table, or a third transaction would see the record unlocked.
        s_young = waitdie.begin_session(2)
        s_young.update(table, (1,), {"w": 20.0})
        s_old = waitdie.begin_session(1)
        s_old.update(table, (1,), {"w": 10.0})  # wound + X grant
        s3 = waitdie.begin_session(3)
        with pytest.raises(DeadlockAvoidanceAbort):
            s3.update(table, (1,), {"w": 30.0})  # txn 1 still holds X
        assert commit(waitdie, s_old).committed
        assert table.get_record((1,)).value["w"] == 10.0

    def test_shared_locks_do_not_wound(self, table, waitdie):
        s_young = waitdie.begin_session(2)
        s_young.read(table, (1,))
        s_old = waitdie.begin_session(1)
        s_old.read(table, (1,))  # S + S: no conflict, no wound
        assert not s_young.wounded
        assert waitdie.stats.wounds == 0
        assert commit(waitdie, s_young).committed
        assert commit(waitdie, s_old).committed


class TestStatsAndValidation:
    def test_validations_counted(self, table, nowait):
        s1 = nowait.begin_session(1)
        s1.update(table, (1,), {"v": 10.0})
        commit(nowait, s1)
        assert nowait.validations == 1
        assert nowait.validation_failures == 0

    def test_user_abort_counted(self, table, nowait):
        s1 = nowait.begin_session(1)
        s1.update(table, (1,), {"v": 10.0})
        TwoPhaseCommit([(nowait, s1)]).abort("user")
        assert nowait.stats.user_aborts == 1

    def test_read_your_writes_under_2pl(self, table, nowait):
        s1 = nowait.begin_session(1)
        s1.update(table, (1,), {"v": 99.0})
        assert s1.read(table, (1,))[0]["v"] == 99.0
        s1.insert(table, {"id": 100, "v": 50.0, "w": 0.0})
        values = sorted(r["v"] for r in s1.scan(table,
                                                col("v") > 10.0).rows)
        assert values == [50.0, 99.0]

    def test_commit_tid_exceeds_read_versions(self, table, nowait):
        s1 = nowait.begin_session(1)
        s1.update(table, (1,), {"v": 5.0})
        out1 = commit(nowait, s1)
        s2 = nowait.begin_session(2)
        s2.read(table, (1,))
        s2.update(table, (2,), {"v": 6.0})
        out2 = commit(nowait, s2)
        assert out2.commit_tid > out1.commit_tid


class TestPlaceholderReclamation:
    def test_aborted_insert_leaves_no_tombstone(self, table, nowait):
        # Regression: buffer-time placeholders of aborted inserts must
        # not accumulate in Table._records forever.
        before = len(table)
        for i in range(50):
            s = nowait.begin_session(i + 1)
            s.insert(table, {"id": 1000 + i, "v": 1.0, "w": 0.0})
            TwoPhaseCommit([(nowait, s)]).abort()
        assert len(table) == before
        assert nowait.locks.held_count() == 0

    def test_cancelled_insert_leaves_no_tombstone(self, table, nowait):
        before = len(table)
        s = nowait.begin_session(1)
        s.insert(table, {"id": 1000, "v": 1.0, "w": 0.0})
        s.delete(table, (1000,))  # insert + delete cancels out
        assert commit(nowait, s).committed
        assert len(table) == before

    def test_committed_insert_survives_reclamation(self, table, nowait):
        s = nowait.begin_session(1)
        s.insert(table, {"id": 1000, "v": 1.0, "w": 0.0})
        assert commit(nowait, s).committed
        assert table.get_record((1000,)) is not None

    def test_occ_aborted_insert_leaves_no_tombstone(self, table):
        from repro.concurrency.occ import ConcurrencyManager

        occ = ConcurrencyManager(0, EpochManager())
        before = len(table)
        # Make validation fail after the insert placeholder is taken:
        # a stale read forces a ValidationAbort.
        s1 = occ.begin_session(1)
        s1.read(table, (1,))
        s1.insert(table, {"id": 1000, "v": 1.0, "w": 0.0})
        s2 = occ.begin_session(2)
        s2.update(table, (1,), {"w": 9.0})
        assert commit(occ, s2).committed
        assert not commit(occ, s1).committed
        assert len(table) == before  # placeholder reclaimed


class TestPassthroughBestEffortInstall:
    def test_racing_unique_insert_loser_fully_dropped(self):
        # Under "none", the losing racer of a unique-index conflict
        # must be dropped atomically: not half-installed in _records
        # while absent from the index.
        schema = make_schema(
            "t", [int_col("id"), float_col("x")], ["id"],
            [IndexSpec("by_x", ("x",), ordered=True, unique=True)])
        table = Table(schema)
        cc = PassthroughCC(0, EpochManager())

        s1, s2 = cc.begin_session(1), cc.begin_session(2)
        s1.insert(table, {"id": 5, "x": 1.0})
        s2.insert(table, {"id": 6, "x": 1.0})  # same unique key
        assert TwoPhaseCommit([(cc, s1)]).commit(1.0).committed
        out2 = TwoPhaseCommit([(cc, s2)]).commit(2.0)
        assert out2.committed  # "none" commits; the write is dropped
        assert out2.writes == 0

        assert table.get_record((5,)) is not None
        assert table.get_record((6,)) is None  # loser left no row
        assert [r["id"] for r in table.rows()] == [5]
        assert table.index("by_x").lookup((1.0,)) == frozenset({(5,)})


class TestMultiContainer2PL:
    def test_atomic_across_containers(self):
        schema = make_schema("t", [int_col("id"), float_col("v")],
                             ["id"])
        t0, t1 = Table(schema), Table(schema)
        t0.load_row({"id": 1, "v": 1.0})
        t1.load_row({"id": 1, "v": 1.0})
        m0 = LockingCC(0, EpochManager(), policy="wait_die")
        m1 = LockingCC(1, EpochManager(), policy="wait_die")

        s0, s1 = m0.begin_session(2), m1.begin_session(2)
        s0.update(t0, (1,), {"v": 10.0})
        s1.update(t1, (1,), {"v": 10.0})
        # An older transaction wounds the multi-container one in
        # container 1 before it commits.
        s_old = m1.begin_session(1)
        s_old.update(t1, (1,), {"v": 99.0})
        assert TwoPhaseCommit([(m1, s_old)]).commit(1.0).committed

        outcome = TwoPhaseCommit([(m0, s0), (m1, s1)]).commit(2.0)
        assert not outcome.committed
        # Atomicity: neither container applied the wounded writes.
        assert t0.get_record((1,)).value["v"] == 1.0
        assert t1.get_record((1,)).value["v"] == 99.0
        assert m0.locks.held_count() == 0
        assert m1.locks.held_count() == 0

    def test_doom_propagates_across_containers(self):
        # A transaction wounded in one container must stop acquiring
        # (and wounding healthy victims) in its other containers.
        class FakeRoot:
            doomed = False

        schema = make_schema("t", [int_col("id"), float_col("v")],
                             ["id"])
        ta, tb = Table(schema), Table(schema)
        ta.load_row({"id": 1, "v": 1.0})
        tb.load_row({"id": 1, "v": 1.0})
        ma = LockingCC(0, EpochManager(), policy="wait_die")
        mb = LockingCC(1, EpochManager(), policy="wait_die")

        root = FakeRoot()
        t_a, t_b = ma.begin_session(5), mb.begin_session(5)
        t_a.owner = t_b.owner = root
        t_a.update(ta, (1,), {"v": 50.0})

        # A healthy, younger transaction holds a lock in container B.
        young = mb.begin_session(9)
        young.update(tb, (1,), {"v": 90.0})

        # An older transaction wounds T in container A.
        old = ma.begin_session(1)
        old.update(ta, (1,), {"v": 10.0})
        assert t_a.wounded and root.doomed

        # Doomed T must not wound the healthy younger holder in B.
        with pytest.raises(WoundAbort):
            t_b.update(tb, (1,), {"v": 50.0})
        assert not young.wounded
        assert mb.stats.wounds == 0
        assert commit(mb, young).committed
        assert commit(ma, old).committed

    def test_wound_of_already_doomed_victim_releases_local_locks(self):
        # Regression: wounding a victim that was already doomed in
        # another container must still free its locks *here*, or a
        # stale dead holder lingers in the lock table and spuriously
        # conflicts with later requesters.
        class FakeRoot:
            doomed = False

        schema = make_schema("t", [int_col("id"), float_col("v")],
                             ["id"])
        ta, tb = Table(schema), Table(schema)
        ta.load_row({"id": 1, "v": 1.0})
        tb.load_row({"id": 1, "v": 1.0})
        ma = LockingCC(0, EpochManager(), policy="wait_die")
        mb = LockingCC(1, EpochManager(), policy="wait_die")

        root = FakeRoot()
        v_a, v_b = ma.begin_session(10), mb.begin_session(10)
        v_a.owner = v_b.owner = root
        v_a.update(ta, (1,), {"v": 50.0})
        v_b.read(tb, (1,))  # shared lock in container B

        old_a = ma.begin_session(1)
        old_a.update(ta, (1,), {"v": 10.0})  # wounds V in A
        assert root.doomed

        # An older txn in B conflicts with V's (stale) shared lock:
        # the wound there must release it even though V is already
        # doomed, and must not re-count the wound.
        p = mb.begin_session(2)
        p.update(tb, (1,), {"v": 20.0})
        assert commit(mb, p).committed
        assert ma.stats.wounds == 1 and mb.stats.wounds == 0

        # No dead holder left behind: a younger txn acquires cleanly.
        young = mb.begin_session(11)
        young.update(tb, (1,), {"v": 30.0})
        assert commit(mb, young).committed
        assert mb.stats.deadlock_avoidance == 0
        assert commit(ma, old_a).committed
