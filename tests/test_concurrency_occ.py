"""Silo-style OCC: read-your-writes, validation, phantoms, 2PC."""

import pytest

from repro.concurrency.coordinator import TwoPhaseCommit
from repro.concurrency.occ import ConcurrencyManager
from repro.concurrency.tid import EpochManager
from repro.errors import DuplicateKeyError, RecordNotFound
from repro.relational.predicate import col
from repro.relational.schema import (
    IndexSpec,
    float_col,
    int_col,
    make_schema,
)
from repro.relational.table import Table


@pytest.fixture
def table():
    schema = make_schema(
        "t", [int_col("id"), float_col("v")], ["id"],
        [IndexSpec("by_v", ("v",), ordered=True)])
    table = Table(schema)
    for i in range(5):
        table.load_row({"id": i, "v": float(i)})
    return table


@pytest.fixture
def manager():
    return ConcurrencyManager(0, EpochManager())


def commit(manager, session, now=1.0):
    return TwoPhaseCommit([(manager, session)]).commit(now)


class TestReadYourWrites:
    def test_read_sees_own_update(self, table, manager):
        s = manager.begin_session(1)
        s.update(table, (1,), {"v": 99.0})
        row, __ = s.read(table, (1,))
        assert row["v"] == 99.0
        assert table.get_record((1,)).value["v"] == 1.0  # not yet

    def test_read_sees_own_insert(self, table, manager):
        s = manager.begin_session(1)
        s.insert(table, {"id": 100, "v": 1.0})
        row, __ = s.read(table, (100,))
        assert row["v"] == 1.0

    def test_read_sees_own_delete(self, table, manager):
        s = manager.begin_session(1)
        s.delete(table, (1,))
        row, __ = s.read(table, (1,))
        assert row is None

    def test_scan_applies_overlay(self, table, manager):
        s = manager.begin_session(1)
        s.update(table, (1,), {"v": 99.0})
        s.delete(table, (2,))
        s.insert(table, {"id": 100, "v": 50.0})
        rows = s.scan(table, col("v") > 10.0).rows
        values = sorted(r["v"] for r in rows)
        assert values == [50.0, 99.0]

    def test_insert_then_delete_cancels(self, table, manager):
        s = manager.begin_session(1)
        s.insert(table, {"id": 100, "v": 1.0})
        s.delete(table, (100,))
        assert s.read(table, (100,))[0] is None
        assert s.write_count == 0

    def test_delete_then_insert_becomes_update(self, table, manager):
        s = manager.begin_session(1)
        s.delete(table, (1,))
        s.insert(table, {"id": 1, "v": 42.0})
        outcome = commit(manager, s)
        assert outcome.committed
        assert table.get_record((1,)).value["v"] == 42.0

    def test_duplicate_insert_detected_early(self, table, manager):
        s = manager.begin_session(1)
        with pytest.raises(DuplicateKeyError):
            s.insert(table, {"id": 1, "v": 0.0})

    def test_update_missing_raises(self, table, manager):
        s = manager.begin_session(1)
        with pytest.raises(RecordNotFound):
            s.update(table, (999,), {"v": 0.0})

    def test_delete_missing_raises(self, table, manager):
        s = manager.begin_session(1)
        with pytest.raises(RecordNotFound):
            s.delete(table, (999,))


class TestValidation:
    def test_stale_read_aborts(self, table, manager):
        s1 = manager.begin_session(1)
        s1.read(table, (1,))
        s1.update(table, (1,), {"v": 10.0})
        s2 = manager.begin_session(2)
        s2.update(table, (1,), {"v": 20.0})
        assert commit(manager, s2).committed
        outcome = commit(manager, s1)
        assert not outcome.committed
        assert table.get_record((1,)).value["v"] == 20.0

    def test_read_only_vs_disjoint_write_both_commit(self, table,
                                                     manager):
        s1 = manager.begin_session(1)
        s1.read(table, (1,))
        s2 = manager.begin_session(2)
        s2.update(table, (2,), {"v": 20.0})
        assert commit(manager, s2).committed
        assert commit(manager, s1).committed

    def test_write_write_second_aborts(self, table, manager):
        s1 = manager.begin_session(1)
        s1.update(table, (1,), {"v": 10.0})
        s2 = manager.begin_session(2)
        s2.update(table, (1,), {"v": 20.0})
        assert commit(manager, s1).committed
        assert not commit(manager, s2).committed

    def test_concurrent_inserts_same_key(self, table, manager):
        s1 = manager.begin_session(1)
        s1.insert(table, {"id": 100, "v": 1.0})
        s2 = manager.begin_session(2)
        s2.insert(table, {"id": 100, "v": 2.0})
        assert commit(manager, s1).committed
        assert not commit(manager, s2).committed
        assert table.get_record((100,)).value["v"] == 1.0

    def test_phantom_insert_aborts_scan(self, table, manager):
        s1 = manager.begin_session(1)
        s1.scan(table, col("v") >= 0.0)
        s2 = manager.begin_session(2)
        s2.insert(table, {"id": 100, "v": 100.0})
        assert commit(manager, s2).committed
        assert not commit(manager, s1).committed

    def test_read_miss_guards_against_insert(self, table, manager):
        s1 = manager.begin_session(1)
        assert s1.read(table, (100,))[0] is None
        s1.update(table, (0,), {"v": 5.0})
        s2 = manager.begin_session(2)
        s2.insert(table, {"id": 100, "v": 1.0})
        assert commit(manager, s2).committed
        assert not commit(manager, s1).committed

    def test_scan_update_conflict_detected(self, table, manager):
        # An update that changes whether a row matches a predicate
        # must invalidate a concurrent scan (conservative read-set
        # registration of all examined candidates).
        s1 = manager.begin_session(1)
        s1.scan(table, col("v") > 100.0)  # matches nothing, examines all
        s1.update(table, (0,), {"v": -1.0})
        s2 = manager.begin_session(2)
        s2.update(table, (3,), {"v": 500.0})
        assert commit(manager, s2).committed
        assert not commit(manager, s1).committed

    def test_validation_failure_releases_locks(self, table, manager):
        s1 = manager.begin_session(1)
        s1.read(table, (1,))
        s1.update(table, (1,), {"v": 10.0})
        s2 = manager.begin_session(2)
        s2.update(table, (1,), {"v": 20.0})
        assert commit(manager, s2).committed
        assert not commit(manager, s1).committed
        record = table.get_record((1,))
        assert record.locked_by is None

    def test_commit_tids_monotonic(self, table, manager):
        tids = []
        for i in range(3):
            s = manager.begin_session(i)
            s.update(table, (1,), {"v": float(i)})
            outcome = commit(manager, s, now=float(i + 1))
            tids.append(outcome.commit_tid)
        assert tids == sorted(tids)
        assert len(set(tids)) == 3

    def test_commit_tid_exceeds_read_versions(self, table, manager):
        s1 = manager.begin_session(1)
        s1.update(table, (1,), {"v": 5.0})
        out1 = commit(manager, s1)
        s2 = manager.begin_session(2)
        s2.read(table, (1,))
        s2.update(table, (2,), {"v": 6.0})
        out2 = commit(manager, s2)
        assert out2.commit_tid > out1.commit_tid

    def test_disabled_cc_skips_validation(self, table):
        manager = ConcurrencyManager(0, EpochManager(), enabled=False)
        s1 = manager.begin_session(1)
        s1.read(table, (1,))
        s1.update(table, (1,), {"v": 10.0})
        s2 = manager.begin_session(2)
        s2.update(table, (1,), {"v": 20.0})
        assert commit(manager, s2).committed
        assert commit(manager, s1).committed  # no validation


class TestTwoPhaseCommit:
    def test_multi_container_atomic_abort(self, manager):
        schema = make_schema("t", [int_col("id"), float_col("v")],
                             ["id"])
        t0, t1 = Table(schema), Table(schema)
        t0.load_row({"id": 1, "v": 1.0})
        t1.load_row({"id": 1, "v": 1.0})
        m0 = ConcurrencyManager(0, EpochManager())
        m1 = ConcurrencyManager(1, EpochManager())

        s_multi0 = m0.begin_session(1)
        s_multi1 = m1.begin_session(1)
        s_multi0.update(t0, (1,), {"v": 10.0})
        s_multi1.update(t1, (1,), {"v": 10.0})

        # A competing single-container commit invalidates container 1.
        s_other = m1.begin_session(2)
        s_other.update(t1, (1,), {"v": 99.0})
        assert TwoPhaseCommit([(m1, s_other)]).commit(1.0).committed

        outcome = TwoPhaseCommit(
            [(m0, s_multi0), (m1, s_multi1)]).commit(2.0)
        assert not outcome.committed
        # Atomicity: neither container applied the multi-write.
        assert t0.get_record((1,)).value["v"] == 1.0
        assert t1.get_record((1,)).value["v"] == 99.0

    def test_multi_container_commit_applies_everywhere(self):
        schema = make_schema("t", [int_col("id"), float_col("v")],
                             ["id"])
        t0, t1 = Table(schema), Table(schema)
        t0.load_row({"id": 1, "v": 1.0})
        t1.load_row({"id": 1, "v": 1.0})
        m0 = ConcurrencyManager(0, EpochManager())
        m1 = ConcurrencyManager(1, EpochManager())
        s0, s1 = m0.begin_session(1), m1.begin_session(1)
        s0.update(t0, (1,), {"v": 7.0})
        s1.update(t1, (1,), {"v": 8.0})
        outcome = TwoPhaseCommit([(m0, s0), (m1, s1)]).commit(1.0)
        assert outcome.committed
        assert outcome.containers == 2
        assert t0.get_record((1,)).value["v"] == 7.0
        assert t1.get_record((1,)).value["v"] == 8.0

    def test_explicit_abort_discards_writes(self, table, manager):
        s = manager.begin_session(1)
        s.update(table, (1,), {"v": 10.0})
        TwoPhaseCommit([(manager, s)]).abort()
        assert table.get_record((1,)).value["v"] == 1.0

    def test_needs_participants(self):
        with pytest.raises(ValueError):
            TwoPhaseCommit([])

    def test_validation_stats_counted(self, table, manager):
        s1 = manager.begin_session(1)
        s1.read(table, (1,))
        s1.update(table, (1,), {"v": 1.5})
        s2 = manager.begin_session(2)
        s2.update(table, (1,), {"v": 2.5})
        commit(manager, s2)
        commit(manager, s1)
        assert manager.validations == 2
        assert manager.validation_failures == 1
