"""TID encoding and epoch management tests."""

import pytest

from repro.concurrency.tid import (
    EPOCH_PERIOD_US,
    EpochManager,
    TidGenerator,
    make_tid,
    tid_epoch,
    tid_seq,
)


class TestTidEncoding:
    def test_roundtrip(self):
        tid = make_tid(3, 77)
        assert tid_epoch(tid) == 3
        assert tid_seq(tid) == 77

    def test_epoch_dominates_ordering(self):
        assert make_tid(2, 1) > make_tid(1, 999_999)

    def test_sequence_overflow_guarded(self):
        with pytest.raises(OverflowError):
            make_tid(1, 1 << 33)


class TestEpochManager:
    def test_starts_at_one(self):
        assert EpochManager().epoch == 1

    def test_advances_with_time(self):
        epochs = EpochManager(period_us=100.0)
        assert epochs.observe_time(50.0) == 1
        assert epochs.observe_time(150.0) == 2
        assert epochs.observe_time(950.0) == 10

    def test_never_goes_backwards(self):
        epochs = EpochManager(period_us=100.0)
        epochs.observe_time(500.0)
        assert epochs.observe_time(10.0) == 6

    def test_default_period(self):
        assert EpochManager().period_us == EPOCH_PERIOD_US

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            EpochManager(period_us=0)


class TestTidGenerator:
    def test_monotonic(self):
        gen = TidGenerator(EpochManager())
        tids = [gen.next_tid(float(i)) for i in range(10)]
        assert tids == sorted(tids)
        assert len(set(tids)) == 10

    def test_respects_floor(self):
        gen = TidGenerator(EpochManager())
        floor = make_tid(1, 500)
        assert gen.next_tid(0.0, at_least=floor) > floor

    def test_epoch_embedded(self):
        epochs = EpochManager(period_us=100.0)
        gen = TidGenerator(epochs)
        tid = gen.next_tid(1000.0)
        assert tid_epoch(tid) >= 11

    def test_advance_to_syncs_counters(self):
        epochs = EpochManager()
        gen_a, gen_b = TidGenerator(epochs), TidGenerator(epochs)
        tid = gen_a.next_tid(1.0)
        gen_b.advance_to(tid)
        assert gen_b.next_tid(1.0) > tid
