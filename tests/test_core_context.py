"""ReactorContext API coverage: queries, updates, utilities."""

import pytest

from repro.core.database import ReactorDatabase
from repro.core.deployment import shared_nothing
from repro.core.reactor import ReactorType
from repro.errors import TransactionAbort
from repro.relational import (
    IndexSpec,
    Query,
    agg_sum,
    col,
    float_col,
    int_col,
    make_schema,
    str_col,
)

INVENTORY = ReactorType("Inventory", lambda: [
    make_schema("items", [
        int_col("id"), str_col("category"), float_col("price"),
        int_col("stock"),
    ], ["id"], [
        IndexSpec("by_category", ("category",)),
        IndexSpec("by_price", ("price",), ordered=True),
    ]),
])


@INVENTORY.procedure
def probe(ctx, action, *args):
    """Dispatch helper so tests can exercise each context method."""
    if action == "lookup":
        return ctx.lookup("items", args[0])
    if action == "select":
        return ctx.select("items", *args)
    if action == "select_one":
        return ctx.select_one("items", *args)
    if action == "select_range":
        low, high, reverse, limit = args
        return ctx.select("items", index="by_price", low=low,
                          high=high, reverse=reverse, limit=limit)
    if action == "insert":
        ctx.insert("items", args[0])
        return None
    if action == "update":
        return ctx.update("items", args[0], args[1])
    if action == "update_where":
        return ctx.update_where("items", args[0], args[1])
    if action == "delete":
        ctx.delete("items", args[0])
        return None
    if action == "delete_where":
        return ctx.delete_where("items", args[0])
    if action == "run_query":
        return ctx.run_query("items", args[0])
    if action == "meta":
        return {"name": ctx.my_name(), "type": ctx.reactor_type,
                "tables": list(ctx.table_names()), "now": ctx.now}
    if action == "rng":
        return [ctx.rng.random() for __ in range(3)]
    raise AssertionError(f"unknown action {action}")


@pytest.fixture
def inv():
    database = ReactorDatabase(shared_nothing(1),
                               [("store", INVENTORY)])
    database.load("store", "items", [
        {"id": 1, "category": "tools", "price": 9.5, "stock": 3},
        {"id": 2, "category": "tools", "price": 19.0, "stock": 0},
        {"id": 3, "category": "toys", "price": 4.0, "stock": 7},
        {"id": 4, "category": "toys", "price": 14.0, "stock": 2},
    ])
    return database


class TestQueries:
    def test_lookup_scalar_pk(self, inv):
        row = inv.run("store", "probe", "lookup", 3)
        assert row["category"] == "toys"

    def test_lookup_missing(self, inv):
        assert inv.run("store", "probe", "lookup", 99) is None

    def test_select_with_predicate(self, inv):
        rows = inv.run("store", "probe", "select",
                       col("category") == "tools")
        assert {r["id"] for r in rows} == {1, 2}

    def test_select_one(self, inv):
        row = inv.run("store", "probe", "select_one",
                      col("price") > 15.0)
        assert row["id"] == 2

    def test_select_one_empty(self, inv):
        assert inv.run("store", "probe", "select_one",
                       col("price") > 100.0) is None

    def test_ordered_index_range(self, inv):
        rows = inv.run("store", "probe", "select_range",
                       (5.0,), (15.0,), False, None)
        assert [r["id"] for r in rows] == [1, 4]

    def test_reverse_limited_range(self, inv):
        rows = inv.run("store", "probe", "select_range",
                       None, None, True, 2)
        assert [r["id"] for r in rows] == [2, 4]

    def test_run_query_pipeline(self, inv):
        query = Query().group_by("category").aggregate(
            total=agg_sum("stock"))
        rows = inv.run("store", "probe", "run_query", query)
        assert {r["category"]: r["total"] for r in rows} == \
            {"tools": 3, "toys": 9}


class TestMutations:
    def test_insert_and_lookup(self, inv):
        inv.run("store", "probe", "insert",
                {"id": 9, "category": "toys", "price": 1.0,
                 "stock": 1})
        assert inv.run("store", "probe", "lookup", 9)["price"] == 1.0

    def test_update_returns_new_image(self, inv):
        row = inv.run("store", "probe", "update", 1, {"stock": 10})
        assert row["stock"] == 10

    def test_update_where_counts(self, inv):
        count = inv.run("store", "probe", "update_where",
                        col("category") == "toys", {"stock": 0})
        assert count == 2
        rows = inv.run("store", "probe", "select",
                       col("stock") == 0)
        assert {r["id"] for r in rows} == {2, 3, 4}

    def test_delete(self, inv):
        inv.run("store", "probe", "delete", 1)
        assert inv.run("store", "probe", "lookup", 1) is None

    def test_delete_where(self, inv):
        count = inv.run("store", "probe", "delete_where",
                        col("price") < 10.0)
        assert count == 2
        remaining = inv.run("store", "probe", "select")
        assert {r["id"] for r in remaining} == {2, 4}

    def test_update_missing_aborts_txn(self, inv):
        with pytest.raises(TransactionAbort):
            inv.run("store", "probe", "update", 99, {"stock": 1})


class TestUtilities:
    def test_meta(self, inv):
        meta = inv.run("store", "probe", "meta")
        assert meta["name"] == "store"
        assert meta["type"] == "Inventory"
        assert meta["tables"] == ["items"]
        assert meta["now"] >= 0.0

    def test_rng_deterministic_per_txn(self, inv):
        first = inv.run("store", "probe", "rng")
        second = inv.run("store", "probe", "rng")
        # Different transactions draw different streams...
        assert first != second
        # ...but the same txn id on a fresh database reproduces.
        other = ReactorDatabase(shared_nothing(1),
                                [("store", INVENTORY)])
        other.load("store", "items",
                   [{"id": 1, "category": "t", "price": 1.0,
                     "stock": 1}])
        assert other.run("store", "probe", "rng") == first
