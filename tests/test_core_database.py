"""ReactorDatabase behavior across deployments."""

import pytest

from repro.core.database import ReactorDatabase
from repro.core.deployment import (
    ContainerSpec,
    DeploymentConfig,
    RangePlacement,
    shared_nothing,
)
from repro.errors import (
    DeploymentError,
    TransactionAbort,
    UnknownReactorError,
)
from repro.sim.machine import XEON_E3_1276
from tests.conftest import ACCOUNT, account_name, make_bank


class TestBasics:
    def test_run_returns_procedure_result(self, bank_any):
        assert bank_any.run("acct0", "get_balance") == 100.0

    def test_transfer_moves_money(self, bank_any):
        result = bank_any.run("acct0", "transfer", "acct5", 30.0)
        assert result == 130.0
        assert bank_any.run("acct0", "get_balance") == 70.0
        assert bank_any.run("acct5", "get_balance") == 130.0

    def test_fan_out(self, bank_any):
        bank_any.run("acct0", "fan_out", ["acct1", "acct2", "acct4"],
                     10.0)
        assert bank_any.run("acct0", "get_balance") == 70.0
        for name in ("acct1", "acct2", "acct4"):
            assert bank_any.run(name, "get_balance") == 110.0

    def test_user_abort_rolls_back(self, bank_any):
        with pytest.raises(TransactionAbort):
            bank_any.run("acct0", "credit", -1000.0)
        assert bank_any.run("acct0", "get_balance") == 100.0

    def test_abort_in_subtxn_rolls_back_everything(self, bank_any):
        # The credit succeeds on the destination, then the source debit
        # aborts: nothing may remain applied.
        with pytest.raises(TransactionAbort):
            bank_any.run("acct0", "transfer", "acct5", 150.0)
        assert bank_any.run("acct0", "get_balance") == 100.0
        assert bank_any.run("acct5", "get_balance") == 100.0

    def test_dangerous_structure_aborts_when_async(self, bank_sn):
        # Under shared-nothing the two calls to one reactor are
        # dispatched asynchronously and overlap: the dynamic safety
        # condition must abort the transaction.
        with pytest.raises(TransactionAbort):
            bank_sn.run("acct0", "double_call_same", "acct5")
        assert bank_sn.run("acct5", "get_balance") == 100.0

    def test_same_program_is_safe_when_inlined(self, bank_se_affinity):
        # Under shared-everything both calls execute inline and
        # sequentially — the first sub-transaction completes before
        # the second is invoked, so the (dynamic) condition passes.
        bank_se_affinity.run("acct0", "double_call_same", "acct5")
        assert bank_se_affinity.run("acct5", "get_balance") == 103.0

    def test_unknown_reactor(self, bank_any):
        with pytest.raises(UnknownReactorError):
            bank_any.run("nope", "get_balance")

    def test_unknown_procedure(self, bank_any):
        from repro.errors import UnknownProcedureError
        with pytest.raises(UnknownProcedureError):
            bank_any.run("acct0", "no_such_proc")

    def test_reactor_registry(self, bank_any):
        assert "acct0" in bank_any
        assert "ghost" not in bank_any
        assert len(bank_any.reactor_names()) == 6


class TestVirtualization:
    """The same application must behave identically under any
    deployment (the paper's central virtualization claim)."""

    def test_results_identical_across_deployments(self):
        outcomes = []
        for fixture in ("sn", "se"):
            from repro.core.deployment import (
                shared_everything_with_affinity,
            )
            deployment = shared_nothing(3) if fixture == "sn" else \
                shared_everything_with_affinity(3)
            database = make_bank(deployment)
            database.run("acct0", "transfer", "acct5", 10.0)
            database.run("acct5", "fan_out", ["acct1", "acct2"], 5.0)
            state = {
                name: database.run(name, "get_balance")
                for name in database.reactor_names()
            }
            outcomes.append(state)
        assert outcomes[0] == outcomes[1]

    def test_shared_nothing_pins_reactors(self, bank_sn):
        for name in bank_sn.reactor_names():
            reactor = bank_sn.reactor(name)
            assert reactor.pinned_executor is not None
            assert reactor.pinned_executor in \
                reactor.container.executors

    def test_shared_everything_does_not_pin(self, bank_se_affinity):
        for name in bank_se_affinity.reactor_names():
            assert bank_se_affinity.reactor(name).pinned_executor \
                is None

    def test_latency_reflects_deployment(self):
        # Cross-reactor transfers cost communication under
        # shared-nothing but not under shared-everything.
        times = {}
        for label, deployment in (
                ("sn", shared_nothing(3)),
                ("se", __import__(
                    "repro.core.deployment", fromlist=["x"]
                ).shared_everything_with_affinity(3))):
            database = make_bank(deployment)
            start = database.scheduler.now
            database.run("acct0", "transfer", "acct5", 1.0)
            times[label] = database.scheduler.now - start
        assert times["sn"] > times["se"]


class TestDeploymentValidation:
    def test_too_many_executors_for_machine(self):
        deployment = shared_nothing(XEON_E3_1276.hardware_threads + 1)
        with pytest.raises(DeploymentError):
            ReactorDatabase(deployment, [("a", ACCOUNT)])

    def test_duplicate_reactor_names(self):
        with pytest.raises(DeploymentError):
            ReactorDatabase(shared_nothing(2),
                            [("a", ACCOUNT), ("a", ACCOUNT)])

    def test_placement_out_of_range(self):
        class BadPlacement(RangePlacement):
            def container_for(self, name, index, n_containers):
                return 99

        deployment = DeploymentConfig(
            name="bad", containers=[ContainerSpec()],
            placement=BadPlacement(1))
        with pytest.raises(DeploymentError):
            ReactorDatabase(deployment, [("a", ACCOUNT)])

    def test_range_placement_lays_out_blocks(self):
        deployment = shared_nothing(3, placement=RangePlacement(2))
        database = make_bank(deployment)
        for i in range(6):
            reactor = database.reactor(account_name(i))
            assert reactor.container.container_id == i // 2


class TestObservability:
    def test_utilization_snapshot(self, bank_sn):
        bank_sn.run("acct0", "busy_work", 500.0)
        busy = bank_sn.utilization_snapshot()
        assert sum(busy.values()) >= 500.0

    def test_abort_counts(self, bank_sn):
        bank_sn.run("acct0", "transfer", "acct5", 1.0)
        counts = bank_sn.abort_counts()
        assert counts["validations"] >= 1
        assert counts["validation_failures"] == 0

    def test_abort_counts_per_reason_breakdown(self, bank_sn):
        with pytest.raises(TransactionAbort):
            bank_sn.run("acct0", "credit", -1000.0)  # user abort
        counts = bank_sn.abort_counts()
        assert counts["scheme"] == "occ"
        assert counts["by_reason"]["user"] == 1
        assert counts["by_reason"]["validation_failure"] == 0
        assert counts["total_aborts"] == 1

    def test_abort_counts_under_2pl(self):
        database = make_bank(shared_nothing(3, cc_scheme="2pl_nowait"))
        database.run("acct0", "transfer", "acct5", 1.0)
        counts = database.abort_counts()
        assert counts["scheme"] == "2pl_nowait"
        assert counts["validations"] >= 1
        assert set(counts["by_reason"]) >= {
            "validation_failure", "lock_conflict",
            "deadlock_avoidance", "wound", "user"}


class TestRootRouting:
    def _executors_used(self, database, n_txns=6):
        seen = []
        reactor = database.reactor("acct0")
        for __ in range(n_txns):
            seen.append(database._route_root(reactor).executor_id)
        return seen

    def test_round_robin_rotates_executors(self):
        from repro.core.deployment import (
            shared_everything_without_affinity,
        )

        database = make_bank(shared_everything_without_affinity(3))
        assert self._executors_used(database) == [0, 1, 2, 0, 1, 2]

    def test_affinity_routes_to_fixed_executor(self):
        from repro.core.deployment import (
            shared_everything_with_affinity,
        )

        database = make_bank(shared_everything_with_affinity(3))
        assert len(set(self._executors_used(database))) == 1
        # Different reactors spread over executors, but each sticks.
        reactor1 = database.reactor("acct1")
        targets = {database._route_root(reactor1).executor_id
                   for __ in range(4)}
        assert len(targets) == 1

    def test_round_robin_counter_is_database_wide(self):
        from repro.core.deployment import (
            shared_everything_without_affinity,
        )

        database = make_bank(shared_everything_without_affinity(2))
        a = database._route_root(database.reactor("acct0")).executor_id
        b = database._route_root(database.reactor("acct1")).executor_id
        assert [a, b] == [0, 1]
