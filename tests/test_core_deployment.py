"""Deployment configuration: factories, validation, serialization."""

import pytest

from repro.core.deployment import (
    AFFINITY,
    ROUND_ROBIN,
    ContainerSpec,
    DeploymentConfig,
    ExplicitPlacement,
    Placement,
    RangePlacement,
    shared_everything_with_affinity,
    shared_everything_without_affinity,
    shared_nothing,
)
from repro.errors import DeploymentError
from repro.sim.machine import OPTERON_6274, XEON_E3_1276


class TestFactories:
    def test_s1(self):
        config = shared_everything_without_affinity(4)
        assert config.routing == ROUND_ROBIN
        assert len(config.containers) == 1
        assert config.containers[0].executors == 4
        assert not config.pin_reactors

    def test_s2(self):
        config = shared_everything_with_affinity(4)
        assert config.routing == AFFINITY
        assert not config.pin_reactors
        assert config.containers[0].mpl == 1

    def test_s3(self):
        config = shared_nothing(4, mpl=8)
        assert len(config.containers) == 4
        assert all(c.executors == 1 for c in config.containers)
        assert all(c.mpl == 8 for c in config.containers)
        assert config.pin_reactors

    def test_total_executors(self):
        assert shared_nothing(5).total_executors == 5
        assert shared_everything_with_affinity(7).total_executors == 7


class TestValidation:
    def test_needs_containers(self):
        with pytest.raises(DeploymentError):
            DeploymentConfig(name="x", containers=[])

    def test_unknown_routing(self):
        with pytest.raises(DeploymentError):
            DeploymentConfig(name="x", containers=[ContainerSpec()],
                             routing="psychic")

    def test_round_robin_needs_single_container(self):
        with pytest.raises(DeploymentError):
            DeploymentConfig(
                name="x",
                containers=[ContainerSpec(), ContainerSpec()],
                routing=ROUND_ROBIN)

    def test_container_spec_bounds(self):
        with pytest.raises(DeploymentError):
            ContainerSpec(executors=0)
        with pytest.raises(DeploymentError):
            ContainerSpec(mpl=0)


class TestPlacements:
    def test_modulo(self):
        placement = Placement()
        assert placement.container_for("r", 5, 3) == 2

    def test_range(self):
        placement = RangePlacement(10)
        assert placement.container_for("r", 5, 3) == 0
        assert placement.container_for("r", 15, 3) == 1
        assert placement.container_for("r", 999, 3) == 2  # clamped

    def test_range_requires_positive_block(self):
        with pytest.raises(DeploymentError):
            RangePlacement(0)

    def test_explicit(self):
        placement = ExplicitPlacement({"a": 2})
        assert placement.container_for("a", 0, 3) == 2
        with pytest.raises(DeploymentError):
            placement.container_for("b", 0, 3)


class TestSerialization:
    def test_round_trip_via_dict(self):
        config = shared_nothing(3, machine=OPTERON_6274, mpl=2,
                                placement=RangePlacement(100))
        restored = DeploymentConfig.from_dict(config.to_dict())
        assert restored.to_dict() == config.to_dict()
        assert restored.machine is OPTERON_6274
        assert isinstance(restored.placement, RangePlacement)
        assert restored.placement.block_size == 100

    def test_round_trip_via_json(self):
        config = shared_everything_with_affinity(2,
                                                 machine=XEON_E3_1276)
        restored = DeploymentConfig.from_json(config.to_json())
        assert restored.to_dict() == config.to_dict()

    def test_explicit_placement_serializes(self):
        config = shared_nothing(
            2, placement=ExplicitPlacement({"a": 0, "b": 1}))
        restored = DeploymentConfig.from_dict(config.to_dict())
        assert isinstance(restored.placement, ExplicitPlacement)
        assert restored.placement.mapping == {"a": 0, "b": 1}

    def test_unknown_placement_kind(self):
        with pytest.raises(DeploymentError):
            Placement.from_dict({"kind": "astrological"})

    def test_defaults_from_minimal_dict(self):
        config = DeploymentConfig.from_dict({
            "name": "minimal",
            "containers": [{}],
        })
        assert config.routing == AFFINITY
        assert config.machine is XEON_E3_1276
        assert config.cc_enabled
        assert config.cc_scheme == "occ"

    @pytest.mark.parametrize(
        "scheme", ["occ", "2pl_nowait", "2pl_waitdie", "none"])
    def test_cc_scheme_round_trips(self, scheme):
        config = shared_nothing(3, mpl=2, cc_scheme=scheme)
        via_dict = DeploymentConfig.from_dict(config.to_dict())
        assert via_dict.cc_scheme == scheme
        assert via_dict.to_dict() == config.to_dict()
        via_json = DeploymentConfig.from_json(config.to_json())
        assert via_json.cc_scheme == scheme
        assert via_json.cc_enabled == (scheme != "none")

    def test_legacy_cc_enabled_dict_still_loads(self):
        data = shared_nothing(2).to_dict()
        del data["cc_scheme"]
        data["cc_enabled"] = False
        assert DeploymentConfig.from_dict(data).cc_scheme == "none"
        data["cc_enabled"] = True
        assert DeploymentConfig.from_dict(data).cc_scheme == "occ"

    def test_unknown_cc_scheme_rejected(self):
        with pytest.raises(DeploymentError):
            shared_nothing(2, cc_scheme="psychic")

    def test_unknown_top_level_key_rejected(self):
        """Typos in config files must fail loudly, naming the key —
        a silently ignored ``cc_schema`` would run the wrong scheme."""
        data = shared_nothing(2).to_dict()
        data["cc_schema"] = "2pl_nowait"
        with pytest.raises(DeploymentError, match="cc_schema"):
            DeploymentConfig.from_dict(data)

    def test_legacy_cc_enabled_key_still_accepted(self):
        data = shared_nothing(2).to_dict()
        data["cc_enabled"] = True
        DeploymentConfig.from_dict(data)  # not an unknown key

    def test_replication_round_trips(self):
        from repro.replication import ReplicationConfig

        config = shared_nothing(
            2, replication=ReplicationConfig(
                replicas_per_container=2, mode="async",
                read_from_replicas=True, async_lag_us=75.0))
        restored = DeploymentConfig.from_json(config.to_json())
        assert restored.replication == config.replication
        assert restored.to_dict() == config.to_dict()

    def test_replication_defaults_to_disabled(self):
        config = DeploymentConfig.from_dict({
            "name": "minimal", "containers": [{}]})
        assert not config.replication.enabled

    def test_factories_accept_legacy_cc_enabled(self):
        assert shared_nothing(2, cc_enabled=False).cc_scheme == "none"
        assert shared_everything_with_affinity(
            2, cc_enabled=True).cc_scheme == "occ"

    def test_architecture_change_is_config_only(self):
        """The paper's claim: architecture changes are config edits."""
        s3 = shared_nothing(4).to_dict()
        s2 = shared_everything_with_affinity(4).to_dict()
        assert s3 != s2
        # Both load through the same code path, no application change.
        assert DeploymentConfig.from_dict(s3).name == "shared-nothing"
        assert DeploymentConfig.from_dict(s2).name == \
            "shared-everything-with-affinity"
