"""Cost model (Figure 3) unit tests."""

import pytest

from repro.bench.metrics import RunSummary
from repro.costmodel import (
    Calibration,
    Call,
    ForkJoinSpec,
    MeasuredCosts,
    calibrate_from_summary,
    destinations,
    fit_measured_costs,
    multi_transfer,
    predict_observable_breakdown,
    tpcc_new_order,
    ycsb_multi_update,
)

CAL = Calibration(cs=1.5, cr=4.5, leaf_exec=2.0, commit_input_gen=9.0)


class TestEquation:
    def test_pure_processing(self):
        assert ForkJoinSpec(p_seq=5.0).latency() == 5.0

    def test_sync_children_add_up(self):
        spec = ForkJoinSpec(
            p_seq=1.0,
            sync_seq=[Call(ForkJoinSpec.leaf(2.0), cs=1.0, cr=3.0)])
        assert spec.latency() == 1.0 + 2.0 + 1.0 + 3.0

    def test_inline_children_have_no_comm(self):
        spec = ForkJoinSpec(sync_seq=[Call(ForkJoinSpec.leaf(2.0))])
        assert spec.latency() == 2.0

    def test_async_children_overlap(self):
        # Two async children of 10 each: latency is bounded by the
        # slowest chain, not the sum.
        spec = ForkJoinSpec(async_calls=[
            Call(ForkJoinSpec.leaf(10.0), cs=1.0, cr=2.0),
            Call(ForkJoinSpec.leaf(10.0), cs=1.0, cr=2.0),
        ])
        assert spec.latency() == 10.0 + 2.0 + 2.0  # L + cr + prefix cs

    def test_prefix_send_costs_accumulate(self):
        calls = [Call(ForkJoinSpec.leaf(0.0), cs=1.0, cr=0.0)
                 for __ in range(5)]
        assert ForkJoinSpec(async_calls=calls).latency() == 5.0

    def test_overlap_leg_can_dominate(self):
        spec = ForkJoinSpec(
            async_calls=[Call(ForkJoinSpec.leaf(1.0), cs=1.0, cr=1.0)],
            p_ovp=100.0)
        assert spec.latency() == 100.0

    def test_recursive_nesting(self):
        inner = ForkJoinSpec(
            p_seq=1.0,
            sync_seq=[Call(ForkJoinSpec.leaf(2.0), cs=0.5, cr=0.5)])
        outer = ForkJoinSpec(sync_seq=[Call(inner, cs=1.0, cr=1.0)])
        assert outer.latency() == (1.0 + 2.0 + 1.0) + 2.0

    def test_sync_ovp_competes_with_async(self):
        spec = ForkJoinSpec(
            async_calls=[Call(ForkJoinSpec.leaf(3.0), cs=1.0, cr=1.0)],
            sync_ovp=[Call(ForkJoinSpec.leaf(2.0), cs=1.0, cr=1.0)])
        # async leg: 3 + 1 + 1 = 5; overlap leg: 2 + 2 = 4.
        assert spec.latency() == 5.0


class TestMultiTransferSpecs:
    def _comm(self, size, remote=True):
        return destinations(CAL, size, [remote] * size)

    def test_ordering_fully_sync_slowest(self):
        comm = self._comm(7)
        latencies = {
            variant: multi_transfer(variant, CAL, comm).latency()
            for variant in ("fully-sync", "partially-async",
                            "fully-async", "opt")
        }
        assert latencies["fully-sync"] > latencies["partially-async"]
        assert latencies["partially-async"] > latencies["fully-async"]
        # opt only strictly wins once processing is not fully hidden
        # under the communication chain (the max() in Figure 3).
        assert latencies["fully-async"] >= latencies["opt"]
        heavy = Calibration(cs=0.5, cr=0.5, leaf_exec=5.0,
                            commit_input_gen=0.0)
        heavy_comm = destinations(heavy, 7, [True] * 7)
        assert multi_transfer("fully-async", heavy,
                              heavy_comm).latency() > \
            multi_transfer("opt", heavy, heavy_comm).latency()

    def test_monotone_in_size(self):
        for variant in ("fully-sync", "opt"):
            previous = 0.0
            for size in range(1, 8):
                latency = multi_transfer(
                    variant, CAL, self._comm(size)).latency()
                assert latency >= previous
                previous = latency

    def test_local_cheaper_than_remote(self):
        remote = multi_transfer("fully-sync", CAL, self._comm(5))
        local = multi_transfer("fully-sync", CAL,
                               self._comm(5, remote=False))
        assert local.latency() < remote.latency()

    def test_fully_sync_is_linear(self):
        lat = [multi_transfer("fully-sync", CAL,
                              self._comm(n)).latency()
               for n in (1, 2, 3)]
        assert lat[2] - lat[1] == pytest.approx(lat[1] - lat[0])

    def test_unknown_variant(self):
        with pytest.raises(ValueError):
            multi_transfer("telepathic", CAL, self._comm(1))

    def test_destinations_flag_validation(self):
        with pytest.raises(ValueError):
            destinations(CAL, 3, [True])


class TestOtherPrograms:
    def test_ycsb_more_async_is_slower_than_local(self):
        all_remote = ycsb_multi_update(CAL, n_async=10, n_local=0)
        all_local = ycsb_multi_update(CAL, n_async=0, n_local=10)
        # Dispatching a remote update costs more than doing one
        # locally (the Appendix C observation).
        assert all_remote.latency() > all_local.latency()

    def test_ycsb_fractional_counts(self):
        spec = ycsb_multi_update(CAL, n_async=2.5, n_local=1.0)
        assert len(spec.async_calls) == 3
        assert spec.latency() > 0

    def test_tpcc_new_order_batches_overlap(self):
        one_batch = tpcc_new_order(CAL, local_work=10.0,
                                   remote_batches=[10.0])
        five_batches = tpcc_new_order(
            CAL, local_work=10.0, remote_batches=[2.0] * 5)
        # Five small overlapped batches beat one large batch.
        assert five_batches.latency() < one_batch.latency()


class TestObservableBreakdown:
    def test_components_sum_to_total(self):
        comm = destinations(CAL, 5, [True] * 5)
        for variant in ("fully-sync", "partially-async",
                        "fully-async", "opt"):
            spec = multi_transfer(variant, CAL, comm)
            parts = predict_observable_breakdown(spec, 9.0)
            component_sum = sum(
                v for k, v in parts.items() if k != "total")
            assert component_sum == pytest.approx(parts["total"])

    def test_fully_sync_has_no_async_component(self):
        spec = multi_transfer("fully-sync", CAL,
                              destinations(CAL, 3, [True] * 3))
        parts = predict_observable_breakdown(spec)
        assert parts["async_execution"] == pytest.approx(0.0)

    def test_partially_async_pays_cr_per_transfer(self):
        spec = multi_transfer("partially-async", CAL,
                              destinations(CAL, 4, [True] * 4))
        parts = predict_observable_breakdown(spec)
        assert parts["cr"] == pytest.approx(4 * CAL.cr)

    def test_opt_pays_one_blocking_cr(self):
        spec = multi_transfer("opt", CAL,
                              destinations(CAL, 4, [True] * 4))
        parts = predict_observable_breakdown(spec)
        assert parts["cr"] == pytest.approx(CAL.cr)


class TestCalibration:
    def test_from_summary(self):
        summary = RunSummary(breakdown={
            "sync_execution": 8.0, "cs": 1.5, "cr": 4.5,
            "async_execution": 0.0, "commit_input_gen": 9.0,
        })
        calibration = calibrate_from_summary(summary, n_remote_sync=1,
                                             leaf_per_sync=2)
        assert calibration.cs == 1.5
        assert calibration.cr == 4.5
        assert calibration.leaf_exec == 4.0
        assert calibration.commit_input_gen == 9.0

    def test_needs_data(self):
        with pytest.raises(ValueError):
            calibrate_from_summary(RunSummary())

    def test_commit_extrapolation(self):
        calibration = Calibration(1.0, 2.0, 3.0, 10.0)
        assert calibration.commit_for_containers(5, 2) == 10.0
        assert calibration.commit_for_containers(
            5, 2, per_container=2.0) == 16.0


class TestMeasuredCostFit:
    """fit_measured_costs: least-squares over (op_counts, busy_us)."""

    TRUE = {"commit": 12.0, "remote_call": 3.5, "log_append": 0.8}

    def _sample(self, counts):
        busy = sum(self.TRUE[op] * n for op, n in counts.items())
        return counts, busy

    def test_exact_recovery_on_noiseless_samples(self):
        samples = [
            self._sample({"commit": 10, "remote_call": 0,
                          "log_append": 10}),
            self._sample({"commit": 5, "remote_call": 20,
                          "log_append": 5}),
            self._sample({"commit": 8, "remote_call": 4,
                          "log_append": 40}),
            self._sample({"commit": 20, "remote_call": 7,
                          "log_append": 0}),
        ]
        fit = fit_measured_costs(samples, backend="threads")
        assert isinstance(fit, MeasuredCosts)
        assert fit.backend == "threads"
        assert fit.samples == 4
        for op, true_cost in self.TRUE.items():
            assert fit.costs[op] == pytest.approx(true_cost, rel=1e-5)
        assert fit.residual_us == pytest.approx(0.0, abs=1e-6)

    def test_residual_reflects_noise(self):
        counts, busy = self._sample({"commit": 10, "remote_call": 10,
                                     "log_append": 10})
        samples = [
            self._sample({"commit": 10, "remote_call": 0,
                          "log_append": 10}),
            self._sample({"commit": 5, "remote_call": 20,
                          "log_append": 5}),
            self._sample({"commit": 8, "remote_call": 4,
                          "log_append": 40}),
            (counts, busy + 30.0),  # one perturbed observation
        ]
        fit = fit_measured_costs(samples)
        assert fit.residual_us > 0.0

    def test_scale_vs_modeled(self):
        fit = MeasuredCosts(backend="threads",
                            costs={"commit": 24.0, "remote_call": 3.5,
                                   "unmodeled": 1.0})
        ratio = fit.scale_vs({"commit": 12.0, "remote_call": 3.5,
                              "unfitted": 9.0})
        assert ratio == {"commit": pytest.approx(2.0),
                         "remote_call": pytest.approx(1.0)}

    def test_empty_samples_rejected(self):
        with pytest.raises(ValueError, match="no samples"):
            fit_measured_costs([])

    def test_underdetermined_rejected(self):
        samples = [self._sample({"commit": 1, "remote_call": 1,
                                 "log_append": 1})]
        with pytest.raises(ValueError, match="underdetermined"):
            fit_measured_costs(samples)

    def test_dependent_samples_rejected(self):
        base = {"commit": 2, "remote_call": 4, "log_append": 6}
        samples = [self._sample(base),
                   self._sample({k: 2 * v for k, v in base.items()}),
                   self._sample({k: 3 * v for k, v in base.items()})]
        with pytest.raises(ValueError, match="singular"):
            fit_measured_costs(samples, ridge=0.0)
