"""Cost model (Figure 3) unit tests."""

import pytest

from repro.bench.metrics import RunSummary
from repro.costmodel import (
    Calibration,
    Call,
    ForkJoinSpec,
    calibrate_from_summary,
    destinations,
    multi_transfer,
    predict_observable_breakdown,
    tpcc_new_order,
    ycsb_multi_update,
)

CAL = Calibration(cs=1.5, cr=4.5, leaf_exec=2.0, commit_input_gen=9.0)


class TestEquation:
    def test_pure_processing(self):
        assert ForkJoinSpec(p_seq=5.0).latency() == 5.0

    def test_sync_children_add_up(self):
        spec = ForkJoinSpec(
            p_seq=1.0,
            sync_seq=[Call(ForkJoinSpec.leaf(2.0), cs=1.0, cr=3.0)])
        assert spec.latency() == 1.0 + 2.0 + 1.0 + 3.0

    def test_inline_children_have_no_comm(self):
        spec = ForkJoinSpec(sync_seq=[Call(ForkJoinSpec.leaf(2.0))])
        assert spec.latency() == 2.0

    def test_async_children_overlap(self):
        # Two async children of 10 each: latency is bounded by the
        # slowest chain, not the sum.
        spec = ForkJoinSpec(async_calls=[
            Call(ForkJoinSpec.leaf(10.0), cs=1.0, cr=2.0),
            Call(ForkJoinSpec.leaf(10.0), cs=1.0, cr=2.0),
        ])
        assert spec.latency() == 10.0 + 2.0 + 2.0  # L + cr + prefix cs

    def test_prefix_send_costs_accumulate(self):
        calls = [Call(ForkJoinSpec.leaf(0.0), cs=1.0, cr=0.0)
                 for __ in range(5)]
        assert ForkJoinSpec(async_calls=calls).latency() == 5.0

    def test_overlap_leg_can_dominate(self):
        spec = ForkJoinSpec(
            async_calls=[Call(ForkJoinSpec.leaf(1.0), cs=1.0, cr=1.0)],
            p_ovp=100.0)
        assert spec.latency() == 100.0

    def test_recursive_nesting(self):
        inner = ForkJoinSpec(
            p_seq=1.0,
            sync_seq=[Call(ForkJoinSpec.leaf(2.0), cs=0.5, cr=0.5)])
        outer = ForkJoinSpec(sync_seq=[Call(inner, cs=1.0, cr=1.0)])
        assert outer.latency() == (1.0 + 2.0 + 1.0) + 2.0

    def test_sync_ovp_competes_with_async(self):
        spec = ForkJoinSpec(
            async_calls=[Call(ForkJoinSpec.leaf(3.0), cs=1.0, cr=1.0)],
            sync_ovp=[Call(ForkJoinSpec.leaf(2.0), cs=1.0, cr=1.0)])
        # async leg: 3 + 1 + 1 = 5; overlap leg: 2 + 2 = 4.
        assert spec.latency() == 5.0


class TestMultiTransferSpecs:
    def _comm(self, size, remote=True):
        return destinations(CAL, size, [remote] * size)

    def test_ordering_fully_sync_slowest(self):
        comm = self._comm(7)
        latencies = {
            variant: multi_transfer(variant, CAL, comm).latency()
            for variant in ("fully-sync", "partially-async",
                            "fully-async", "opt")
        }
        assert latencies["fully-sync"] > latencies["partially-async"]
        assert latencies["partially-async"] > latencies["fully-async"]
        # opt only strictly wins once processing is not fully hidden
        # under the communication chain (the max() in Figure 3).
        assert latencies["fully-async"] >= latencies["opt"]
        heavy = Calibration(cs=0.5, cr=0.5, leaf_exec=5.0,
                            commit_input_gen=0.0)
        heavy_comm = destinations(heavy, 7, [True] * 7)
        assert multi_transfer("fully-async", heavy,
                              heavy_comm).latency() > \
            multi_transfer("opt", heavy, heavy_comm).latency()

    def test_monotone_in_size(self):
        for variant in ("fully-sync", "opt"):
            previous = 0.0
            for size in range(1, 8):
                latency = multi_transfer(
                    variant, CAL, self._comm(size)).latency()
                assert latency >= previous
                previous = latency

    def test_local_cheaper_than_remote(self):
        remote = multi_transfer("fully-sync", CAL, self._comm(5))
        local = multi_transfer("fully-sync", CAL,
                               self._comm(5, remote=False))
        assert local.latency() < remote.latency()

    def test_fully_sync_is_linear(self):
        lat = [multi_transfer("fully-sync", CAL,
                              self._comm(n)).latency()
               for n in (1, 2, 3)]
        assert lat[2] - lat[1] == pytest.approx(lat[1] - lat[0])

    def test_unknown_variant(self):
        with pytest.raises(ValueError):
            multi_transfer("telepathic", CAL, self._comm(1))

    def test_destinations_flag_validation(self):
        with pytest.raises(ValueError):
            destinations(CAL, 3, [True])


class TestOtherPrograms:
    def test_ycsb_more_async_is_slower_than_local(self):
        all_remote = ycsb_multi_update(CAL, n_async=10, n_local=0)
        all_local = ycsb_multi_update(CAL, n_async=0, n_local=10)
        # Dispatching a remote update costs more than doing one
        # locally (the Appendix C observation).
        assert all_remote.latency() > all_local.latency()

    def test_ycsb_fractional_counts(self):
        spec = ycsb_multi_update(CAL, n_async=2.5, n_local=1.0)
        assert len(spec.async_calls) == 3
        assert spec.latency() > 0

    def test_tpcc_new_order_batches_overlap(self):
        one_batch = tpcc_new_order(CAL, local_work=10.0,
                                   remote_batches=[10.0])
        five_batches = tpcc_new_order(
            CAL, local_work=10.0, remote_batches=[2.0] * 5)
        # Five small overlapped batches beat one large batch.
        assert five_batches.latency() < one_batch.latency()


class TestObservableBreakdown:
    def test_components_sum_to_total(self):
        comm = destinations(CAL, 5, [True] * 5)
        for variant in ("fully-sync", "partially-async",
                        "fully-async", "opt"):
            spec = multi_transfer(variant, CAL, comm)
            parts = predict_observable_breakdown(spec, 9.0)
            component_sum = sum(
                v for k, v in parts.items() if k != "total")
            assert component_sum == pytest.approx(parts["total"])

    def test_fully_sync_has_no_async_component(self):
        spec = multi_transfer("fully-sync", CAL,
                              destinations(CAL, 3, [True] * 3))
        parts = predict_observable_breakdown(spec)
        assert parts["async_execution"] == pytest.approx(0.0)

    def test_partially_async_pays_cr_per_transfer(self):
        spec = multi_transfer("partially-async", CAL,
                              destinations(CAL, 4, [True] * 4))
        parts = predict_observable_breakdown(spec)
        assert parts["cr"] == pytest.approx(4 * CAL.cr)

    def test_opt_pays_one_blocking_cr(self):
        spec = multi_transfer("opt", CAL,
                              destinations(CAL, 4, [True] * 4))
        parts = predict_observable_breakdown(spec)
        assert parts["cr"] == pytest.approx(CAL.cr)


class TestCalibration:
    def test_from_summary(self):
        summary = RunSummary(breakdown={
            "sync_execution": 8.0, "cs": 1.5, "cr": 4.5,
            "async_execution": 0.0, "commit_input_gen": 9.0,
        })
        calibration = calibrate_from_summary(summary, n_remote_sync=1,
                                             leaf_per_sync=2)
        assert calibration.cs == 1.5
        assert calibration.cr == 4.5
        assert calibration.leaf_exec == 4.0
        assert calibration.commit_input_gen == 9.0

    def test_needs_data(self):
        with pytest.raises(ValueError):
            calibrate_from_summary(RunSummary())

    def test_commit_extrapolation(self):
        calibration = Calibration(1.0, 2.0, 3.0, 10.0)
        assert calibration.commit_for_containers(5, 2) == 10.0
        assert calibration.commit_for_containers(
            5, 2, per_container=2.0) == 16.0
