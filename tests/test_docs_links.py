"""The documentation tree stays internally consistent.

Runs the same checker the CI ``docs-check`` job uses: every relative
markdown link in the repository must resolve to an existing file, and
the core documents the README promises must exist.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_docs_links",
        REPO_ROOT / "tools" / "check_docs_links.py")
    module = importlib.util.module_from_spec(spec)
    assert spec.loader is not None
    sys.modules.setdefault("check_docs_links", module)
    spec.loader.exec_module(module)
    return module


def test_no_broken_intra_repo_markdown_links():
    checker = _load_checker()
    broken = checker.broken_links(REPO_ROOT)
    assert broken == [], (
        "broken markdown links: "
        + ", ".join(f"{f.relative_to(REPO_ROOT)} -> {t}"
                    for f, t in broken))

def test_docs_tree_exists_and_is_linked():
    for name in ("architecture.md", "deployment.md", "benchmarks.md"):
        assert (REPO_ROOT / "docs" / name).is_file(), name
    readme = (REPO_ROOT / "README.md").read_text()
    for name in ("docs/architecture.md", "docs/deployment.md",
                 "docs/benchmarks.md"):
        assert name in readme, f"README does not link {name}"


def test_checker_detects_breakage(tmp_path):
    checker = _load_checker()
    (tmp_path / "a.md").write_text(
        "see [missing](nowhere.md) and [ok](b.md) and "
        "[web](https://example.com) and [anchor](#sec)")
    (tmp_path / "b.md").write_text("fine")
    broken = checker.broken_links(tmp_path)
    assert [(f.name, t) for f, t in broken] == [("a.md", "nowhere.md")]
