"""Durability tests: logging, checkpoints, recovery equivalence."""

import pytest

from repro.core.database import ReactorDatabase
from repro.core.deployment import (
    shared_everything_with_affinity,
    shared_nothing,
)
from repro.durability import (
    Checkpoint,
    RedoLog,
    enable_durability,
    recover,
    take_checkpoint,
)
from repro.errors import SimulationError, TransactionAbort
from repro.workloads import smallbank as sb

N = 8

#: Recovery must behave identically under every real CC scheme — the
#: redo log records committed after-images, not scheme artifacts.
CC_SCHEMES = ("occ", "2pl_nowait", "2pl_waitdie")


def fresh_bank(deployment=None, cc_scheme="occ"):
    database = ReactorDatabase(
        deployment or shared_nothing(4, cc_scheme=cc_scheme),
        sb.declarations(N))
    sb.load(database, N)
    return database


def state_of(database):
    return {
        (name, table): database.table_rows(name, table)
        for name in database.reactor_names()
        for table in ("savings", "checking")
    }


def run_some_transfers(database, count=20, seed=5):
    import random

    rng = random.Random(seed)
    for i in range(count):
        variant = sb.VARIANTS[i % len(sb.VARIANTS)]
        src = sb.reactor_name(rng.randrange(N))
        dst = sb.reactor_name((int(src[4:]) + 1 + rng.randrange(N - 1))
                              % N)
        reactor, proc, args = sb.multi_transfer_spec(
            variant, src, [dst], 2.0)
        try:
            database.run(reactor, proc, *args)
        except TransactionAbort:
            pass


class TestLogging:
    def test_committed_writes_logged(self):
        database = fresh_bank()
        manager = enable_durability(database)
        database.run(sb.reactor_name(0), "deposit_checking", 10.0)
        records = list(manager.log_records())
        assert records
        entries = [e for r in records for e in r.entries]
        assert any(e.table == "checking" and e.kind == "update"
                   for e in entries)

    def test_aborted_writes_not_logged(self):
        database = fresh_bank()
        manager = enable_durability(database)
        with pytest.raises(TransactionAbort):
            database.run(sb.reactor_name(0), "transact_saving",
                         -1e12)
        assert list(manager.log_records()) == []

    def test_multi_container_txn_logs_in_both_containers(self):
        database = fresh_bank()
        manager = enable_durability(database)
        database.run(sb.reactor_name(0), "transfer",
                     sb.reactor_name(0), sb.reactor_name(5), 5.0)
        containers = {log.container_id: len(log)
                      for log in manager.logs.values() if len(log)}
        assert len(containers) == 2
        # Same commit TID on both participants.
        tids = {r.commit_tid for r in manager.log_records()}
        assert len(tids) == 1

    def test_log_json_round_trip(self):
        database = fresh_bank()
        manager = enable_durability(database)
        run_some_transfers(database, count=10)
        for log in manager.logs.values():
            text = log.dump_json_lines()
            restored = RedoLog.load_json_lines(log.container_id, text)
            assert restored.records == log.records


class TestCheckpoints:
    def test_checkpoint_requires_quiescence(self):
        database = fresh_bank()
        database.submit(sb.reactor_name(0), "deposit_checking", 1.0)
        with pytest.raises(SimulationError):
            take_checkpoint(database)

    def test_checkpoint_json_round_trip(self):
        database = fresh_bank()
        run_some_transfers(database, count=5)
        checkpoint = take_checkpoint(database)
        restored = Checkpoint.from_json(checkpoint.to_json())
        assert restored.reactors == checkpoint.reactors
        assert restored.tid_watermarks == checkpoint.tid_watermarks

    def test_truncation_drops_covered_prefix(self):
        database = fresh_bank()
        manager = enable_durability(database)
        run_some_transfers(database, count=10)
        before = sum(len(log) for log in manager.logs.values())
        assert before > 0
        manager.checkpoint_and_truncate()
        after = sum(len(log) for log in manager.logs.values())
        assert after == 0


class TestRecovery:
    @pytest.mark.parametrize("cc_scheme", CC_SCHEMES)
    def test_recovery_from_empty_checkpoint_plus_full_log(
            self, cc_scheme):
        database = fresh_bank(cc_scheme=cc_scheme)
        manager = enable_durability(database)
        empty_checkpoint = take_checkpoint(fresh_bank())
        run_some_transfers(database, count=15)
        recovered = recover(
            shared_nothing(4, cc_scheme=cc_scheme),
            sb.declarations(N), empty_checkpoint,
            manager.logs.values())
        assert state_of(recovered) == state_of(database)

    @pytest.mark.parametrize("cc_scheme", CC_SCHEMES)
    def test_recovery_from_checkpoint_plus_tail(self, cc_scheme):
        database = fresh_bank(cc_scheme=cc_scheme)
        manager = enable_durability(database)
        run_some_transfers(database, count=8, seed=1)
        checkpoint = manager.checkpoint_and_truncate()
        run_some_transfers(database, count=8, seed=2)
        recovered = recover(
            shared_nothing(4, cc_scheme=cc_scheme),
            sb.declarations(N), checkpoint, manager.logs.values())
        assert state_of(recovered) == state_of(database)

    def test_recovered_state_identical_across_cc_schemes(self):
        """The same (sequential, deterministic) workload recovers to
        the same state no matter which scheme logged it — and a log
        written under one scheme replays under another."""
        states = {}
        logs = {}
        for scheme in CC_SCHEMES:
            database = fresh_bank(cc_scheme=scheme)
            manager = enable_durability(database)
            run_some_transfers(database, count=12, seed=9)
            checkpoint = take_checkpoint(fresh_bank())
            recovered = recover(
                shared_nothing(4, cc_scheme=scheme),
                sb.declarations(N), checkpoint,
                manager.logs.values())
            assert state_of(recovered) == state_of(database)
            states[scheme] = state_of(recovered)
            logs[scheme] = manager
        baseline = states["occ"]
        for scheme in CC_SCHEMES[1:]:
            assert states[scheme] == baseline, scheme
        # Cross-scheme recovery: 2PL-written log, OCC-recovered DB.
        cross = recover(shared_nothing(4, cc_scheme="occ"),
                        sb.declarations(N),
                        take_checkpoint(fresh_bank()),
                        logs["2pl_nowait"].logs.values())
        assert state_of(cross) == baseline

    def test_recovery_onto_different_architecture(self):
        """Recovery targets any deployment: logical state survives
        physical re-architecture."""
        database = fresh_bank()
        manager = enable_durability(database)
        run_some_transfers(database, count=10)
        checkpoint = take_checkpoint(fresh_bank())
        recovered = recover(shared_everything_with_affinity(4),
                            sb.declarations(N), checkpoint,
                            manager.logs.values())
        assert state_of(recovered) == state_of(database)
        # The recovered database keeps working.
        recovered.run(sb.reactor_name(0), "deposit_checking", 1.0)

    def test_post_recovery_commits_get_fresh_tids(self):
        database = fresh_bank()
        manager = enable_durability(database)
        run_some_transfers(database, count=5)
        max_logged = max(r.commit_tid
                         for r in manager.log_records())
        checkpoint = take_checkpoint(fresh_bank())
        recovered = recover(shared_nothing(4), sb.declarations(N),
                            checkpoint, manager.logs.values())
        outcome = {}
        recovered.submit(
            sb.reactor_name(0), "deposit_checking", 1.0,
            on_done=lambda root, ok, reason, res:
            outcome.update(tid=root.commit_tid))
        recovered.scheduler.run()
        assert outcome["tid"] > max_logged

    def test_deletes_replayed(self):
        from repro.core.reactor import ReactorType
        from repro.relational import int_col, make_schema

        KV = ReactorType("DurKv", lambda: [
            make_schema("kv", [int_col("k"), int_col("v")], ["k"]),
        ])

        @KV.procedure
        def put(ctx, k, v):
            ctx.insert("kv", {"k": k, "v": v})

        @KV.procedure
        def drop(ctx, k):
            ctx.delete("kv", k)

        database = ReactorDatabase(shared_nothing(1), [("r", KV)])
        manager = enable_durability(database)
        database.run("r", "put", 1, 10)
        database.run("r", "put", 2, 20)
        database.run("r", "drop", 1)
        checkpoint = Checkpoint(reactors={"r": {"kv": []}},
                                tid_watermarks={})
        recovered = recover(shared_nothing(1), [("r", KV)],
                            checkpoint, manager.logs.values())
        assert recovered.table_rows("r", "kv") == [{"k": 2, "v": 20}]
