"""Smoke tests: example scripts run end-to-end as subprocesses."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, timeout: int = 240) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=timeout)
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "identical results under both architectures" in out


def test_crash_recovery():
    out = run_example("crash_recovery.py")
    assert "CRASH — mid-epoch" in out
    assert "certificate: ok" in out
    assert "recovered database accepts new transactions" in out


def test_replication_failover():
    out = run_example("replication_failover.py")
    assert "no committed data lost" in out
    assert "promoted replica accepts new transactions" in out


def test_deployment_tuning():
    out = run_example("deployment_tuning.py")
    assert "zero application" in out
    assert "shared-nothing" in out


def test_serve_and_connect():
    out = run_example("serve_and_connect.py")
    assert "negotiated protocol v1" in out
    assert "typed shed: retry after" in out


def test_static_safety_check():
    out = run_example("static_safety_check.py")
    assert "[cycle] ping -> pong" in out
    assert "fanout-race" in out


@pytest.mark.slow
def test_tpcc_demo():
    out = run_example("tpcc_demo.py", timeout=400)
    assert "Ktxn/s" in out


@pytest.mark.slow
def test_exchange_risk():
    out = run_example("exchange_risk.py", timeout=500)
    assert "speedup over sequential" in out
