"""Micro-scale smoke tests for experiment modules.

The benchmark suite runs every experiment at measurement scale; these
tests run each ``run()`` at the smallest possible parameters so
regressions in the experiment code itself (not the engine) surface in
the fast test suite.
"""

from repro.experiments import (
    appf2,
    appf3,
    fig05,
    fig07_08,
    fig11,
    fig12,
    fig15_16,
    fig19,
)


def test_fig05_micro():
    results = fig05.run(sizes=(1, 2), variants=("fully-sync", "opt"),
                        n_txns=8, customers_per_container=20)
    assert set(results) == {"fully-sync", "opt"}
    assert results["fully-sync"][2] > results["fully-sync"][1]


def test_fig07_08_micro():
    points = fig07_08.run(scale_factor=2, worker_counts=(1,),
                          measure_us=6_000.0, n_epochs=2)
    assert len(points) == 3
    assert all(p.throughput_ktps > 0 for p in points)


def test_fig11_micro():
    results = fig11.run(sizes=(2,), n_txns=8,
                        customers_per_container=20)
    assert results["fully-sync-remote"][2] > \
        results["fully-sync-local"][2]


def test_fig12_micro():
    results = fig12.run(executor_counts=(1, 3), n_txns=8,
                        customers_per_container=20)
    assert results["round-robin remote"][3] > \
        results["round-robin remote"][1]


def test_fig15_16_micro():
    points = fig15_16.run(scale_factor=2, cross_pcts=(0, 100),
                          workers=2, measure_us=6_000.0, n_epochs=2)
    assert {p.cross_pct for p in points} == {0, 100}


def test_fig19_micro():
    results = fig19.run(random_loads=(10,), n_txns=3,
                        orders_per_provider=60, window=20)
    assert set(results) == set(fig19.STRATEGIES)
    assert all(v > 0 for series in results.values()
               for v in series.values())


def test_appf2_micro():
    points = appf2.run(executor_counts=(1, 2), measure_us=6_000.0,
                       n_epochs=2)
    assert points[0].relative_pct == 100.0


def test_appf3_micro():
    points = appf3.run(scale_factors=(1,), measure_us=6_000.0,
                       n_epochs=2)
    assert points[0].overhead_us > 0
