"""Failure injection and hard runtime edge cases.

Nested call chains, cyclic call structures, aborts racing in-flight
sub-transactions, validation-abort storms, and error propagation
through multiple levels of remote frames.
"""

import pytest

from repro.core.database import ReactorDatabase
from repro.core.deployment import (
    ExplicitPlacement,
    shared_everything_with_affinity,
    shared_nothing,
)
from repro.core.reactor import ReactorType
from repro.errors import TransactionAbort
from repro.relational import float_col, make_schema, str_col

NODE = ReactorType("ChainNode", lambda: [
    make_schema("state", [str_col("key"), float_col("value")],
                ["key"]),
])


@NODE.procedure
def get_value(ctx):
    row = ctx.lookup("state", "v")
    return row["value"]


@NODE.procedure
def set_value(ctx, value):
    ctx.update("state", "v", {"value": value})
    return value


@NODE.procedure
def chain(ctx, path, value):
    """Nested remote chain: this node writes, then calls the next."""
    ctx.update("state", "v", {"value": value})
    if path:
        fut = yield ctx.call(path[0], "chain", path[1:], value + 1.0)
        return (yield ctx.get(fut))
    return value


@NODE.procedure
def chain_then_fail(ctx, path):
    """Walk the chain, then abort at the deepest node."""
    ctx.update("state", "v", {"value": -1.0})
    if path:
        fut = yield ctx.call(path[0], "chain_then_fail", path[1:])
        yield ctx.get(fut)
        return None
    ctx.abort("deepest node aborts")


@NODE.procedure
def call_back(ctx, origin):
    """Complete the cycle: call back to the originating reactor."""
    fut = yield ctx.call(origin, "set_value", 99.0)
    yield ctx.get(fut)


@NODE.procedure
def cyclic(ctx, other):
    """A -> B -> A: a cyclic execution structure across reactors."""
    fut = yield ctx.call(other, "call_back", ctx.my_name())
    yield ctx.get(fut)


@NODE.procedure
def abort_with_inflight(ctx, other):
    """Dispatch an async sub-txn, then abort before consuming it."""
    yield ctx.call(other, "set_value", 5.0)
    ctx.abort("caller changed its mind")


def make_chain_db(n=4, deployment=None):
    names = [f"node{i}" for i in range(n)]
    database = ReactorDatabase(
        deployment or shared_nothing(min(n, 4)),
        [(name, NODE) for name in names])
    for name in names:
        database.load(name, "state", [{"key": "v", "value": 0.0}])
    return database, names


class TestNestedChains:
    def test_three_level_remote_chain(self):
        db, names = make_chain_db(4)
        result = db.run(names[0], "chain", names[1:], 1.0)
        assert result == 4.0
        for i, name in enumerate(names):
            assert db.run(name, "get_value") == 1.0 + i

    def test_chain_abort_at_depth_rolls_back_all_levels(self):
        db, names = make_chain_db(4)
        with pytest.raises(TransactionAbort):
            db.run(names[0], "chain_then_fail", names[1:])
        for name in names:
            assert db.run(name, "get_value") == 0.0

    def test_chain_under_shared_everything(self):
        db, names = make_chain_db(
            4, deployment=shared_everything_with_affinity(4))
        result = db.run(names[0], "chain", names[1:], 1.0)
        assert result == 4.0


class TestCyclicStructures:
    def test_cycle_back_to_root_reactor_aborts(self):
        """A -> B -> A is a dangerous structure: the root transaction
        (sub-transaction 0) is still active on A when B's call-back
        arrives (Section 2.2.4 prohibits cyclic execution
        structures)."""
        db, names = make_chain_db(2)
        with pytest.raises(TransactionAbort):
            db.run(names[0], "cyclic", names[1])
        assert db.run(names[0], "get_value") == 0.0
        assert db.run(names[1], "get_value") == 0.0

    def test_cycle_aborts_even_when_fully_inlined(self):
        """Cyclic structures are dangerous under *any* deployment: the
        root sub-transaction is still active on A when B's call-back
        arrives, so the condition fires even with inline execution
        ("prohibits programs with cyclic execution structures")."""
        db, names = make_chain_db(
            2, deployment=shared_everything_with_affinity(2))
        with pytest.raises(TransactionAbort):
            db.run(names[0], "cyclic", names[1])
        assert db.run(names[0], "get_value") == 0.0


class TestAbortWithInflightWork:
    def test_user_abort_waits_for_inflight_subtxn(self):
        db, names = make_chain_db(2)
        with pytest.raises(TransactionAbort):
            db.run(names[0], "abort_with_inflight", names[1])
        # The in-flight write must not have been committed.
        assert db.run(names[1], "get_value") == 0.0
        # Simulation fully drained: no orphan events.
        assert db.scheduler.pending() == 0


class TestValidationStorm:
    def test_hot_row_storm_preserves_correctness(self):
        """Many concurrent increments of one record: the committed
        count must equal the final value (lost updates impossible)."""
        INC = ReactorType("Counter", lambda: [
            make_schema("c", [str_col("k"), float_col("n")], ["k"]),
        ])

        @INC.procedure
        def bump(ctx):
            row = ctx.lookup("c", "k")
            ctx.update("c", "k", {"n": row["n"] + 1})

        # Two reactors on separate executors hammering one counter
        # through remote sub-transactions.
        @INC.procedure
        def bump_remote(ctx, target):
            fut = yield ctx.call(target, "bump")
            yield ctx.get(fut)

        database = ReactorDatabase(
            shared_nothing(3, mpl=4),
            [("counter", INC), ("client_a", INC), ("client_b", INC)])
        database.load("counter", "c", [{"k": "k", "n": 0.0}])
        database.load("client_a", "c", [{"k": "k", "n": 0.0}])
        database.load("client_b", "c", [{"k": "k", "n": 0.0}])

        outcomes = []
        for i in range(30):
            source = "client_a" if i % 2 == 0 else "client_b"
            database.submit(source, "bump_remote", "counter",
                            on_done=lambda root, ok, reason, res:
                            outcomes.append(ok))
        database.scheduler.run()

        final = database.table_rows("counter", "c")[0]["n"]
        assert final == sum(1 for ok in outcomes if ok)
        assert any(not ok for ok in outcomes) or final == 30


class TestCrossContainerDuplicates:
    def test_concurrent_remote_inserts_one_wins(self):
        KV = ReactorType("KvNode", lambda: [
            make_schema("kv", [str_col("k"), float_col("v")], ["k"]),
        ])

        @KV.procedure
        def put_new(ctx, key, value):
            ctx.insert("kv", {"k": key, "v": value})

        @KV.procedure
        def put_remote(ctx, target, key, value):
            fut = yield ctx.call(target, "put_new", key, value)
            yield ctx.get(fut)

        database = ReactorDatabase(
            shared_nothing(3, mpl=4,
                           placement=ExplicitPlacement(
                               {"kv": 0, "a": 1, "b": 2})),
            [("kv", KV), ("a", KV), ("b", KV)])
        outcomes = []
        database.submit("a", "put_remote", "kv", "x", 1.0,
                        on_done=lambda r, ok, re, res:
                        outcomes.append(ok))
        database.submit("b", "put_remote", "kv", "x", 2.0,
                        on_done=lambda r, ok, re, res:
                        outcomes.append(ok))
        database.scheduler.run()
        rows = database.table_rows("kv", "kv")
        assert len(rows) == 1
        assert sum(outcomes) >= 1  # at least one succeeded
