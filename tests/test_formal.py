"""Unit tests for the formal model (Section 2.3)."""

from repro.formal import (
    ClassicHistory,
    ReactorHistory,
    abort,
    commit,
    has_cycle,
    history_of,
    is_serializable_classic,
    is_serializable_reactor,
    project,
    project_op,
    read,
    serialization_order,
    theorem_2_7_holds,
    write,
)


class TestOps:
    def test_conflicts(self):
        assert write(1, 1, 0, "x").conflicts_with(read(2, 1, 0, "x"))
        assert write(1, 1, 0, "x").conflicts_with(write(2, 1, 0, "x"))
        assert not read(1, 1, 0, "x").conflicts_with(
            read(2, 1, 0, "x"))

    def test_items_disjoint_across_reactors(self):
        assert not write(1, 1, 0, "x").conflicts_with(
            write(2, 1, 1, "x"))

    def test_projection_name_mapping(self):
        projected = project_op(read(1, 2, 7, "x"))
        assert projected.item == "7::x"
        assert projected.txn == 1


class TestCycleDetection:
    def test_acyclic(self):
        assert not has_cycle([1, 2, 3], {(1, 2), (2, 3)})

    def test_self_loop(self):
        assert has_cycle([1], {(1, 1)})

    def test_two_cycle(self):
        assert has_cycle([1, 2], {(1, 2), (2, 1)})

    def test_long_cycle(self):
        edges = {(1, 2), (2, 3), (3, 4), (4, 1)}
        assert has_cycle([1, 2, 3, 4], edges)

    def test_diamond_is_acyclic(self):
        assert not has_cycle([1, 2, 3, 4],
                             {(1, 2), (1, 3), (2, 4), (3, 4)})

    def test_serialization_order(self):
        order = serialization_order([1, 2, 3], {(2, 1), (1, 3)})
        assert order.index(2) < order.index(1) < order.index(3)

    def test_serialization_order_none_on_cycle(self):
        assert serialization_order([1, 2], {(1, 2), (2, 1)}) is None


class TestHistories:
    def test_serial_history_serializable(self):
        history = history_of([
            read(1, 1, 0, "x"), write(1, 1, 0, "x"), commit(1),
            read(2, 1, 0, "x"), write(2, 1, 0, "x"), commit(2),
        ])
        assert is_serializable_reactor(history)

    def test_classic_lost_update_cycle(self):
        history = history_of([
            read(1, 1, 0, "x"), read(2, 2, 0, "x"),
            write(1, 1, 0, "x"), write(2, 2, 0, "x"),
            commit(1), commit(2),
        ])
        assert not is_serializable_reactor(history)
        assert not is_serializable_classic(project(history))

    def test_aborted_txns_ignored(self):
        history = history_of([
            read(1, 1, 0, "x"), read(2, 2, 0, "x"),
            write(1, 1, 0, "x"), write(2, 2, 0, "x"),
            commit(1), abort(2),
        ])
        assert is_serializable_reactor(history)

    def test_cross_reactor_cycle(self):
        # T1 before T2 on reactor 0, T2 before T1 on reactor 1.
        history = history_of([
            write(1, 1, 0, "x"), write(2, 1, 0, "x"),
            write(2, 2, 1, "y"), write(1, 2, 1, "y"),
            commit(1), commit(2),
        ])
        assert not is_serializable_reactor(history)
        assert theorem_2_7_holds(history)

    def test_committed_txns(self):
        history = history_of([
            write(1, 1, 0, "x"), commit(1),
            write(2, 1, 0, "x"), abort(2),
        ])
        assert history.committed_txns() == {1}

    def test_subtxn_edges_project_to_txn_edges(self):
        history = history_of([
            write(1, 1, 0, "x"), read(2, 5, 0, "x"),
            commit(1), commit(2),
        ])
        assert history.subtxn_conflict_edges() == {(1, 2)}
        assert history.leaf_conflict_edges() == {(1, 2)}

    def test_projection_preserves_event_count(self):
        events = [write(1, 1, 0, "x"), read(1, 2, 1, "y"), commit(1)]
        projected = project(history_of(events))
        assert len(projected.events) == 3

    def test_projection_type(self):
        assert isinstance(project(ReactorHistory()), ClassicHistory)
