"""Operation-level serializability audits of real runs.

Attach a :class:`~repro.formal.audit.HistoryRecorder` to a database,
run concurrent contended workloads under every deployment, and verify
the recorded history is conflict-serializable (and that its witness
serial order is consistent with commit TIDs).
"""

import pytest

from repro.core.deployment import (
    shared_everything_with_affinity,
    shared_everything_without_affinity,
    shared_nothing,
)
from repro.formal.audit import attach_recorder, detach_recorder
from repro.workloads import smallbank as sb
from repro.core.database import ReactorDatabase

N = 8


def _bank(deployment):
    database = ReactorDatabase(deployment, sb.declarations(N))
    sb.load(database, N)
    return database


def _run_contended(database, n_txns=40):
    import random

    rng = random.Random(77)
    tids = {}
    for i in range(n_txns):
        variant = sb.VARIANTS[i % len(sb.VARIANTS)]
        src = sb.reactor_name(rng.randrange(N))
        dsts = []
        while len(dsts) < 2:
            dst = sb.reactor_name(rng.randrange(N))
            if dst != src and dst not in dsts:
                dsts.append(dst)
        reactor, proc, args = sb.multi_transfer_spec(variant, src,
                                                     dsts, 1.0)

        def on_done(root, committed, reason, result):
            if committed:
                tids[root.txn_id] = root.commit_tid

        database.submit(reactor, proc, *args, on_done=on_done)
    database.scheduler.run()
    return tids


DEPLOYMENTS = [
    ("sn", lambda: shared_nothing(4, mpl=4)),
    ("se-aff", lambda: shared_everything_with_affinity(4)),
    ("se-rr", lambda: shared_everything_without_affinity(4)),
]


@pytest.mark.parametrize("label,deployment_fn", DEPLOYMENTS)
def test_recorded_history_is_serializable(label, deployment_fn):
    database = _bank(deployment_fn())
    recorder = attach_recorder(database)
    tids = _run_contended(database)
    assert recorder.is_serializable(), (
        f"{label}: OCC admitted a non-serializable history")
    assert recorder.history.committed_txns() == set(tids)


@pytest.mark.parametrize("label,deployment_fn", DEPLOYMENTS)
def test_witness_order_exists_and_covers_committed(label,
                                                   deployment_fn):
    database = _bank(deployment_fn())
    recorder = attach_recorder(database)
    tids = _run_contended(database)
    order = recorder.equivalent_serial_order()
    assert order is not None
    assert set(order) == set(tids)


def test_recorded_ops_have_subtxn_identities():
    database = _bank(shared_nothing(4))
    recorder = attach_recorder(database)
    reactor, proc, args = sb.multi_transfer_spec(
        "opt", sb.reactor_name(0),
        [sb.reactor_name(1), sb.reactor_name(5)], 1.0)
    database.run(reactor, proc, *args)
    ops = recorder.history.operations()
    assert ops
    # Multiple sub-transactions participated (credits on remote
    # reactors carry sub-transaction ids > 0).
    assert {op.sub for op in ops} != {0}
    # Reads and writes both recorded.
    kinds = {op.kind for op in ops}
    assert kinds == {"r", "w"}


def test_detach_stops_recording():
    database = _bank(shared_nothing(4))
    recorder = attach_recorder(database)
    database.run(sb.reactor_name(0), "balance")
    recorded = len(recorder.history.events)
    detach_recorder(database)
    database.run(sb.reactor_name(0), "balance")
    assert len(recorder.history.events) == recorded


def test_aborted_transactions_recorded_as_aborts():
    database = _bank(shared_nothing(4))
    recorder = attach_recorder(database)
    from repro.errors import TransactionAbort

    with pytest.raises(TransactionAbort):
        database.run(sb.reactor_name(0), "transact_saving",
                     -sb.INITIAL_BALANCE * 10)
    assert recorder.history.committed_txns() == set()
    assert recorder.history.txns()  # the abort event exists
