"""Group commit, incremental checkpoints, partitioned recovery."""

import random

import pytest

from repro import DurabilityConfig
from repro.core.database import ReactorDatabase
from repro.core.deployment import (
    shared_everything_with_affinity,
    shared_nothing,
)
from repro.durability import (
    CheckpointManifest,
    enable_durability,
    recover,
    recover_from_image,
    recover_image_partitioned,
    recover_partitioned,
)
from repro.durability.wal import RedoEntry, RedoRecord
from repro.errors import SimulationError, TransactionAbort
from repro.formal import certify_crash_recovery
from repro.replication import ReplicationConfig
from repro.workloads import smallbank as sb

N = 8


def durable(mode):
    return DurabilityConfig(enabled=True, mode=mode)


def fresh_bank(mode="group", n_containers=4, replication=None):
    database = ReactorDatabase(
        shared_nothing(n_containers, durability=durable(mode),
                       replication=replication),
        sb.declarations(N))
    sb.load(database, N)
    return database


def state_of(database):
    return {
        (name, table): database.table_rows(name, table)
        for name in database.reactor_names()
        for table in ("savings", "checking")
    }


def run_some_transfers(database, count=20, seed=5):
    rng = random.Random(seed)
    for i in range(count):
        variant = sb.VARIANTS[i % len(sb.VARIANTS)]
        src = sb.reactor_name(rng.randrange(N))
        dst = sb.reactor_name(
            (int(src[4:]) + 1 + rng.randrange(N - 1)) % N)
        reactor, proc, args = sb.multi_transfer_spec(
            variant, src, [dst], 2.0)
        try:
            database.run(reactor, proc, *args)
        except TransactionAbort:
            pass


def submit_transfers(database, count, seed=7):
    """Open-loop submits (no drain) — material for mid-epoch kills."""
    rng = random.Random(seed)
    for __ in range(count):
        i = rng.randrange(N)
        database.submit(sb.reactor_name(i), "transfer",
                        sb.reactor_name(i),
                        sb.reactor_name((i + 1) % N), 1.0)


class TestCommitAcknowledgement:
    def test_sync_pays_fsync_per_commit(self):
        database = fresh_bank("sync")
        start = database.scheduler.now
        database.run(sb.reactor_name(0), "deposit_checking", 1.0)
        sync_latency = database.scheduler.now - start
        flushers = database.durability_stats()["flushers"]
        assert sum(f["fsyncs"] for f in flushers.values()) == 1
        assert sync_latency >= database.costs.fsync_cost

    def test_group_waits_for_epoch_flush(self):
        """A lone group commit waits out the epoch interval plus the
        fsync; async acknowledges without either."""
        latencies = {}
        for mode in ("sync", "group", "async"):
            database = fresh_bank(mode)
            start = database.scheduler.now
            acked_at = {}
            database.submit(
                sb.reactor_name(0), "deposit_checking", 1.0,
                on_done=lambda *a: acked_at.setdefault(
                    "t", database.scheduler.now))
            database.scheduler.run()
            latencies[mode] = acked_at["t"] - start
        costs = fresh_bank().costs
        assert latencies["group"] >= (costs.flush_interval_us
                                      + costs.fsync_cost)
        assert latencies["group"] > latencies["sync"] \
            > latencies["async"]

    def test_group_amortizes_fsyncs_across_commits(self):
        """Concurrent commits in one epoch share one flush."""
        database = fresh_bank("group", n_containers=1)
        submit_transfers(database, 12)
        database.scheduler.run()
        flusher = database.durability_stats()["flushers"][0]
        assert flusher["records_flushed"] >= 12
        assert flusher["records_per_fsync"] > 1.5
        # Sync on the same workload: one fsync per writing commit.
        database = fresh_bank("sync", n_containers=1)
        submit_transfers(database, 12)
        database.scheduler.run()
        flusher = database.durability_stats()["flushers"][0]
        assert flusher["fsyncs"] == flusher["records_flushed"]

    def test_batch_bytes_flush_early(self):
        from dataclasses import replace

        from repro.sim.machine import MachineProfile, XEON_E3_1276

        tiny_batch = MachineProfile(
            name="xeon-e3-1276", hardware_threads=8,
            costs=replace(XEON_E3_1276.costs, flush_batch_bytes=200))
        deployment = shared_nothing(1, machine=tiny_batch,
                                    durability=durable("group"))
        database = ReactorDatabase(deployment, sb.declarations(N))
        sb.load(database, N)
        submit_transfers(database, 10)
        database.scheduler.run()
        flusher = database.durability_stats()["flushers"][0]
        assert flusher["early_flushes"] >= 1

    def test_acked_commits_are_durable_at_ack(self):
        """Under sync and group, every acknowledged commit is in the
        durable prefix the instant the client hears about it."""
        for mode in ("sync", "group"):
            database = fresh_bank(mode)
            run_some_transfers(database, count=10)
            image = database.durability.crash()
            cert = certify_crash_recovery(
                database, image,
                recover_from_image(
                    shared_nothing(4, durability=durable(mode)),
                    sb.declarations(N), image))
            assert cert["ok"], cert
            assert cert["zero_acked_loss"]
            assert cert["acked_checked"] > 0

    def test_async_reports_lost_acked_window(self):
        database = fresh_bank("async")
        run_some_transfers(database, count=6)
        # Acked-but-unflushed tail: commits complete immediately, the
        # epoch flush is still pending when we kill.  Run until at
        # least one root acked, then kill before its epoch flushes.
        acked_before = len(database.durability.acked_sites)
        submit_transfers(database, 4)
        deadline = database.scheduler.now + 45.0
        while database.scheduler.now < deadline and \
                len(database.durability.acked_sites) == acked_before:
            database.scheduler.run(
                until=database.scheduler.now + 5.0)
        assert len(database.durability.acked_sites) > acked_before
        image = database.durability.crash()
        recovered = recover_from_image(
            shared_nothing(4, durability=durable("async")),
            sb.declarations(N), image)
        cert = certify_crash_recovery(database, image, recovered)
        assert cert["lost_acked"], "expected an async loss window"
        assert not cert["zero_acked_loss"]
        assert cert["ok"], "async loss is reported, not rejected"
        assert cert["state_ok"]


class TestKillAtArbitraryEpoch:
    @pytest.mark.parametrize("mode", ("sync", "group"))
    def test_every_kill_point_certifies(self, mode):
        """Sweep kill points through the run: at every epoch position
        the crash image recovers to a certified state with zero
        acked-commit loss."""
        horizon = None
        for kill_at in (15.0, 40.0, 75.0, 120.0, 200.0, 400.0):
            database = fresh_bank(mode)
            run_some_transfers(database, count=6, seed=2)
            database.durability.incremental_checkpoint()
            submit_transfers(database, 8)
            base = database.scheduler.now
            database.scheduler.run(until=base + kill_at)
            horizon = database.scheduler.now
            image = database.durability.crash()
            recovered = recover_image_partitioned(
                shared_nothing(4, durability=durable(mode)),
                sb.declarations(N), image).database
            cert = certify_crash_recovery(database, image, recovered)
            assert cert["ok"], (kill_at, cert)
            assert cert["zero_acked_loss"], (kill_at, cert)
            assert cert["state_ok"], (kill_at, cert)
        assert horizon is not None

    def test_torn_cross_container_commit_dropped_atomically(self):
        """A distributed commit flushed on one participant but not
        the other is recovered nowhere."""
        database = fresh_bank("group", n_containers=2)
        manager = database.durability
        log_a = manager.logs[0]
        log_b = manager.logs[1]
        scheduler = database.scheduler

        def entry(reactor, pk, balance):
            return RedoEntry(reactor=reactor, table="checking",
                             kind="update", pk=(pk,),
                             row={"cust_id": pk, "balance": balance})

        # Container 0 opens its epoch early...
        log_a.append(10, [entry(sb.reactor_name(0), 0, 1.0)])
        scheduler.run(until=scheduler.now + 20.0)
        # ...then a cross-container commit lands on both (container
        # 1's epoch opens 20us later, so its flush lands later).
        tid = 50
        log_a.append(tid, [entry(sb.reactor_name(0), 0, 2.0)])
        log_b.append(tid, [entry(sb.reactor_name(1), 1, 3.0)])

        class FakeRoot:
            txn_id = 999
            commit_tid = tid

            def participants(self):
                return [(database.containers[0].concurrency, None),
                        (database.containers[1].concurrency, None)]

        manager.commit_ack_future(FakeRoot())
        # Run until container 0's epoch is durable but 1's is not.
        costs = database.costs
        scheduler.run(until=costs.flush_interval_us
                      + costs.fsync_cost + 1.0)
        assert manager.flushers[0].durable_tid == tid
        assert manager.flushers[1].durable_tid == 0
        image = manager.crash()
        assert image.torn_sites, "expected a torn commit"
        assert tid not in [r.commit_tid for r in image.logs[0]]
        assert tid not in [r.commit_tid for r in image.logs[1]]
        # The independently durable single-container commit survives.
        assert 10 in [r.commit_tid for r in image.logs[0]]

    def test_async_torn_acked_commit_reported_not_rejected(self):
        """Async acknowledges before flushing, so a cross-container
        commit can be acked yet torn at crash time — the certificate
        reports it (torn_unacked_ok False, lost_acked) but still
        accepts the image for this mode, like the lost-acked
        window."""
        database = fresh_bank("async", n_containers=2)
        manager = database.durability
        scheduler = database.scheduler

        def entry(reactor, pk, balance):
            return RedoEntry(reactor=reactor, table="checking",
                             kind="update", pk=(pk,),
                             row={"cust_id": pk, "balance": balance})

        # Stagger the epochs, then land a cross-container commit.
        manager.logs[0].append(10, [entry(sb.reactor_name(0), 0, 1.0)])
        scheduler.run(until=scheduler.now + 20.0)
        tid = 50
        manager.logs[0].append(tid, [entry(sb.reactor_name(0), 0, 2.0)])
        manager.logs[1].append(tid, [entry(sb.reactor_name(1), 1, 3.0)])

        class FakeRoot:
            txn_id = 998
            commit_tid = tid

            def participants(self):
                return [(database.containers[0].concurrency, None),
                        (database.containers[1].concurrency, None)]

        root = FakeRoot()
        assert manager.commit_ack_future(root) is None  # async: no wait
        manager.note_acked(root)  # ...and the client heard "committed"
        costs = database.costs
        scheduler.run(until=costs.flush_interval_us
                      + costs.fsync_cost + 1.0)
        image = manager.crash()
        assert image.torn_sites
        recovered = recover_from_image(
            shared_nothing(2, durability=durable("async")),
            sb.declarations(N), image)
        cert = certify_crash_recovery(database, image, recovered)
        assert not cert["torn_unacked_ok"]
        assert cert["lost_acked"]
        assert cert["ok"], cert  # async: reported, not rejected
        assert cert["state_ok"]

    def test_tampered_images_rejected(self):
        database = fresh_bank("group")
        run_some_transfers(database, count=10)
        target = shared_nothing(4, durability=durable("group"))

        def recovered_of(image):
            return recover_from_image(target, sb.declarations(N),
                                      image)

        # 1. Tamper a durable row.
        image = database.durability.crash()
        for records in image.logs.values():
            if not records:
                continue
            old = records[0]
            e0 = old.entries[0]
            row = dict(e0.row)
            row["balance"] = row.get("balance", 0.0) + 1e6
            records[0] = RedoRecord(old.commit_tid, (
                RedoEntry(e0.reactor, e0.table, e0.kind, e0.pk, row),
            ) + old.entries[1:])
            break
        cert = certify_crash_recovery(database, image,
                                      recovered_of(image))
        assert not cert["ok"]

        # 2. Inject a record that was never installed.
        image = database.durability.crash()
        cid = next(c for c, r in image.logs.items() if r)
        fake_tid = image.logs[cid][-1].commit_tid + 1000
        image.logs[cid].append(RedoRecord(fake_tid, (
            RedoEntry(sb.reactor_name(0), "checking", "update",
                      (0,), {"cust_id": 0, "balance": 777.0}),)))
        cert = certify_crash_recovery(database, image,
                                      recovered_of(image))
        assert not cert["ok"]

        # 3. Drop an acked record (acked-commit loss).
        image = database.durability.crash()
        acked_cid, acked_pos = image.acked_sites[0]
        victim = database.durability.installed[acked_cid][acked_pos]
        image.logs[acked_cid] = [r for r in image.logs[acked_cid]
                                 if r is not victim]
        cert = certify_crash_recovery(database, image,
                                      recovered_of(image))
        assert not cert["ok"]

        # The untampered image still certifies.
        image = database.durability.crash()
        cert = certify_crash_recovery(database, image,
                                      recovered_of(image))
        assert cert["ok"], cert


class TestIncrementalCheckpoints:
    def test_first_segment_is_full_then_deltas(self):
        database = fresh_bank()
        run_some_transfers(database, count=5, seed=1)
        first = database.durability.incremental_checkpoint()
        assert first.kind == "full"
        run_some_transfers(database, count=5, seed=2)
        second = database.durability.incremental_checkpoint()
        assert second.kind == "incremental"
        assert second.parent_seq == first.seq
        # The delta is smaller than the base: only dirty keys.
        full_rows = sum(len(rows) for tables in first.rows.values()
                        for rows in tables.values())
        delta_rows = sum(len(rows) for tables in second.rows.values()
                         for rows in tables.values())
        assert 0 < delta_rows < full_rows

    def test_manifest_materializes_to_full_checkpoint(self):
        database = fresh_bank()
        run_some_transfers(database, count=6, seed=1)
        database.durability.incremental_checkpoint()
        run_some_transfers(database, count=6, seed=2)
        database.durability.incremental_checkpoint()
        manifest = database.durability.manifest
        restored = CheckpointManifest.from_json(manifest.to_json())
        recovered = recover(shared_nothing(4), sb.declarations(N),
                            restored, [])
        assert state_of(recovered) == state_of(database)

    def test_incremental_recovery_equals_full_log_replay(self):
        """Checkpoint chain + truncated tail == full-log replay."""
        with_ckpt = fresh_bank()
        run_some_transfers(with_ckpt, count=6, seed=3)
        with_ckpt.durability.incremental_checkpoint()
        run_some_transfers(with_ckpt, count=6, seed=4)
        with_ckpt.durability.incremental_checkpoint()
        run_some_transfers(with_ckpt, count=6, seed=5)

        no_ckpt = fresh_bank()
        run_some_transfers(no_ckpt, count=6, seed=3)
        run_some_transfers(no_ckpt, count=6, seed=4)
        run_some_transfers(no_ckpt, count=6, seed=5)

        from repro.durability import take_checkpoint

        base = take_checkpoint(fresh_bank())  # the loaded image
        from_chain = recover(shared_nothing(4), sb.declarations(N),
                             with_ckpt.durability.manifest,
                             with_ckpt.durability.logs.values())
        from_log = recover(shared_nothing(4), sb.declarations(N),
                           base, no_ckpt.durability.logs.values())
        assert state_of(from_chain) == state_of(from_log)
        assert state_of(from_chain) == state_of(with_ckpt)

    def test_deleted_keys_tracked(self):
        from repro.core.reactor import ReactorType
        from repro.relational import int_col, make_schema

        KV = ReactorType("GcKv", lambda: [
            make_schema("kv", [int_col("k"), int_col("v")], ["k"]),
        ])

        @KV.procedure
        def put(ctx, k, v):
            ctx.insert("kv", {"k": k, "v": v})

        @KV.procedure
        def drop(ctx, k):
            ctx.delete("kv", k)

        database = ReactorDatabase(
            shared_nothing(1, durability=durable("group")),
            [("r", KV)])
        database.run("r", "put", 1, 10)
        database.run("r", "put", 2, 20)
        database.durability.incremental_checkpoint()
        database.run("r", "drop", 1)
        segment = database.durability.incremental_checkpoint()
        assert segment.deleted["r"]["kv"] == [[1]]
        recovered = recover(shared_nothing(1), [("r", KV)],
                            database.durability.manifest, [])
        assert recovered.table_rows("r", "kv") == [{"k": 2, "v": 20}]

    def test_quiescence_required(self):
        database = fresh_bank()
        database.submit(sb.reactor_name(0), "deposit_checking", 1.0)
        with pytest.raises(SimulationError):
            database.durability.incremental_checkpoint()
        database.scheduler.run()
        database.durability.incremental_checkpoint()

    def test_truncation_respects_pinned_snapshots(self):
        deployment = shared_nothing(4, cc_scheme="mvocc",
                                    durability=durable("group"))
        database = ReactorDatabase(deployment, sb.declarations(N))
        sb.load(database, N)
        run_some_transfers(database, count=6, seed=1)
        manager = database.durability
        # Pin a snapshot below the watermark, then checkpoint: the
        # logs must keep every record above the pin for the
        # snapshot-isolation audit.
        pin_tid = 1
        database.storage.pin(424242, pin_tid)
        segment = manager.incremental_checkpoint()
        assert all(t <= pin_tid for t in segment.truncate_tids.values())
        assert sum(len(log) for log in manager.logs.values()) > 0
        database.storage.unpin(424242)
        segment = manager.incremental_checkpoint()
        assert sum(len(log) for log in manager.logs.values()) == 0
        assert segment.truncate_tids[0] > pin_tid

    def test_truncation_respects_replica_lag(self):
        replication = ReplicationConfig(replicas_per_container=1,
                                        mode="async",
                                        async_lag_us=500.0)
        database = fresh_bank("group", replication=replication)
        run_some_transfers(database, count=4, seed=1)
        # Replicas are fully caught up after the drain; artificially
        # rewind one to model lag at checkpoint time.
        replica = database.replication.replicas[0][0]
        if replica.applied_records:
            dropped = replica.applied_records.pop()
            replica.applied_tids.discard(dropped.commit_tid)
        lag_tid = replica.applied_tid
        segment = database.durability.incremental_checkpoint()
        assert segment.truncate_tids[0] <= lag_tid


class TestPartitionedRecovery:
    def _crashed_bank(self, mode="group"):
        database = fresh_bank(mode)
        run_some_transfers(database, count=12, seed=6)
        database.durability.incremental_checkpoint()
        run_some_transfers(database, count=8, seed=7)
        submit_transfers(database, 6)
        database.scheduler.run(until=database.scheduler.now + 25.0)
        return database, database.durability.crash()

    def test_parallel_equals_serial_equals_plain_recover(self):
        database, image = self._crashed_bank()
        target = shared_nothing(4, durability=durable("group"))
        par = recover_image_partitioned(target, sb.declarations(N),
                                        image)
        ser = recover_image_partitioned(target, sb.declarations(N),
                                        image, parallel=False)
        plain = recover_from_image(target, sb.declarations(N), image)
        assert state_of(par.database) == state_of(ser.database)
        assert state_of(par.database) == state_of(plain)

    def test_parallel_recovery_is_faster(self):
        __, image = self._crashed_bank()
        target = shared_nothing(4)
        par = recover_partitioned(
            target, sb.declarations(N), image.manifest,
            _logs_of(image))
        ser = recover_partitioned(
            target, sb.declarations(N), image.manifest,
            _logs_of(image), parallel=False)
        assert par.partitions == ser.partitions == N
        assert par.recovery_us < ser.recovery_us
        # Four containers, balanced reactors: close to a 4x makespan
        # cut.
        assert par.recovery_us <= ser.recovery_us / 2.0

    def test_recovery_time_scales_with_tail_length(self):
        """More frequent checkpoints -> shorter tail -> faster
        recovery (the bench's recovery-time curve in miniature)."""
        short_tail = fresh_bank()
        run_some_transfers(short_tail, count=16, seed=8)
        short_tail.durability.incremental_checkpoint()
        run_some_transfers(short_tail, count=2, seed=9)

        long_tail = fresh_bank()
        run_some_transfers(long_tail, count=16, seed=8)
        long_tail.durability.incremental_checkpoint(force_full=True)
        run_some_transfers(long_tail, count=14, seed=9)

        target = shared_nothing(4)
        quick = recover_partitioned(
            target, sb.declarations(N),
            short_tail.durability.manifest,
            short_tail.durability.logs.values())
        slow = recover_partitioned(
            target, sb.declarations(N),
            long_tail.durability.manifest,
            long_tail.durability.logs.values())
        assert quick.entries_replayed < slow.entries_replayed
        assert quick.recovery_us < slow.recovery_us

    def test_recovery_onto_different_architecture(self):
        database, image = self._crashed_bank()
        report = recover_image_partitioned(
            shared_everything_with_affinity(4), sb.declarations(N),
            image)
        cert = certify_crash_recovery(database, image,
                                      report.database)
        assert cert["ok"], cert
        report.database.run(sb.reactor_name(0), "deposit_checking",
                            1.0)

    def test_migrated_reactor_recovers_from_both_logs(self):
        """A reactor whose history spans containers (it migrated) is
        one partition merged across logs."""
        database = fresh_bank("group")
        run_some_transfers(database, count=8, seed=11)
        moved = sb.reactor_name(0)
        dst = (database.reactor(moved).container.container_id + 1) % 4
        database.migrate(moved, dst)
        database.scheduler.run()
        run_some_transfers(database, count=8, seed=12)
        from repro.durability import take_checkpoint

        report = recover_partitioned(
            shared_nothing(4, durability=durable("group")),
            sb.declarations(N), take_checkpoint(fresh_bank()),
            database.durability.logs.values())
        assert state_of(report.database) == state_of(database)


class TestFailoverInterplay:
    def test_promotion_keeps_durability_coherent(self):
        replication = ReplicationConfig(replicas_per_container=1,
                                        mode="sync")
        database = fresh_bank("group", replication=replication)
        run_some_transfers(database, count=8, seed=13)
        database.replication.kill_and_promote(0)
        run_some_transfers(database, count=8, seed=14)
        image = database.durability.crash()
        recovered = recover_from_image(
            shared_nothing(4, durability=durable("group")),
            sb.declarations(N), image)
        cert = certify_crash_recovery(database, image, recovered)
        assert cert["ok"], cert
        assert cert["zero_acked_loss"]
        # The promoted container's flusher adopted the new log.
        flusher = database.durability.flushers[0]
        assert flusher.flushed_records == \
            len(database.durability.installed[0])


def _logs_of(image):
    from repro.durability.wal import RedoLog

    logs = []
    for cid, records in image.logs.items():
        log = RedoLog(cid)
        log.records = list(records)
        log.truncated_through = image.truncated_through.get(cid, 0)
        logs.append(log)
    return logs


class TestDurabilityStats:
    def test_stats_surface_flush_pipeline(self):
        database = fresh_bank("group")
        run_some_transfers(database, count=6)
        stats = database.durability_stats()
        assert stats["mode"] == "group"
        assert stats["acked_commits"] > 0
        total_fsyncs = sum(f["fsyncs"]
                           for f in stats["flushers"].values())
        assert total_fsyncs > 0
        bare = ReactorDatabase(shared_nothing(2), sb.declarations(N))
        assert bare.durability_stats() == {"mode": "none"}

    def test_bare_enable_durability_defaults_to_async(self):
        database = ReactorDatabase(shared_nothing(2),
                                   sb.declarations(N))
        manager = enable_durability(database)
        assert manager.mode == "async"
        assert enable_durability(database) is manager
