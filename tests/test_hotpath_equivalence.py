"""Seeded equivalence: the batched hot path vs the reference path.

PR 6 rebuilt the commit pipeline around the epoch-batched engine
(:mod:`repro.concurrency.batch`) and added vectorized multi-key reads
(:meth:`CCSession.multi_read` / ``ctx.multi_lookup``).  Both are pure
speed work: for any fixed seed they must produce *byte-identical*
histories — the same commits and aborts, the same commit TIDs, the
same redo logs, the same recorded operation streams, the same virtual
end time, and the same passing serializability certificates — as the
unbatched reference implementations they replace.  These tests pin
that contract under every registered cc scheme.
"""

from __future__ import annotations

import random
from dataclasses import asdict

import pytest

from repro.concurrency import batch
from repro.concurrency.base import BUILTIN_CC_SCHEMES
from repro.concurrency.mvcc import SnapshotSession
from repro.concurrency.occ import ConcurrencyManager
from repro.concurrency.tid import EpochManager
from repro.core.database import ReactorDatabase
from repro.core.deployment import shared_nothing
from repro.durability.recovery import enable_durability
from repro.formal.audit import attach_recorder
from repro.relational.schema import float_col, int_col, make_schema
from repro.relational.table import Table
from repro.workloads import smallbank as sb

N = 8


@pytest.fixture
def reference_path():
    """Force the unbatched reference commit path for one test."""
    batch.set_batched(False)
    try:
        yield
    finally:
        batch.set_batched(True)


def _specs(n_txns: int = 60) -> list[tuple]:
    """Contended multi-transfers, deposits, and read-only balances."""
    rng = random.Random(99)
    specs: list[tuple] = []
    for i in range(n_txns):
        if i % 3 == 0:
            variant = sb.VARIANTS[i % len(sb.VARIANTS)]
            src = sb.reactor_name(rng.randrange(N))
            dsts = []
            while len(dsts) < 2:
                dst = sb.reactor_name(rng.randrange(N))
                if dst != src and dst not in dsts:
                    dsts.append(dst)
            specs.append(sb.multi_transfer_spec(variant, src, dsts, 1.0))
        elif i % 3 == 1:
            specs.append((sb.reactor_name(rng.randrange(N)),
                          "deposit_checking", (1.0,)))
        else:
            specs.append((sb.reactor_name(rng.randrange(N)),
                          "balance", ()))
    return specs


def _run(scheme: str, batched: bool) -> dict:
    """One seeded SmallBank run; returns everything observable."""
    batch.set_batched(batched)
    try:
        database = ReactorDatabase(
            shared_nothing(4, mpl=4, cc_scheme=scheme),
            sb.declarations(N))
        sb.load(database, N)
        enable_durability(database)  # async: attaches redo logs only
        recorder = attach_recorder(database)

        specs = _specs()
        results: list[tuple] = [None] * len(specs)

        def make_on_done(index: int):
            def on_done(root, committed, reason, result):
                results[index] = (committed, reason, root.commit_tid)
            return on_done

        for index, (reactor, proc, args) in enumerate(specs):
            database.submit(reactor, proc, *args,
                            on_done=make_on_done(index))
        database.scheduler.run()

        return {
            "results": results,
            "end_time": database.scheduler.now,
            "redo": [c.concurrency.redo_log.dump_json_lines()
                     for c in database.containers],
            "cc_stats": [asdict(c.concurrency.stats)
                         for c in database.containers],
            "events": list(recorder.history.events),
            "serializable": recorder.is_serializable(),
            "money": sb.total_money(database, N),
        }
    finally:
        batch.set_batched(True)


@pytest.mark.parametrize("scheme", BUILTIN_CC_SCHEMES)
def test_batched_commit_path_is_history_identical(scheme):
    batched = _run(scheme, batched=True)
    reference = _run(scheme, batched=False)

    assert batched["results"] == reference["results"]
    assert batched["end_time"] == reference["end_time"]
    assert batched["redo"] == reference["redo"]
    assert batched["cc_stats"] == reference["cc_stats"]
    assert batched["events"] == reference["events"]
    assert batched["money"] == reference["money"]
    if scheme != "none":
        assert batched["serializable"]
        assert reference["serializable"]


def test_reference_toggle_roundtrips(reference_path):
    assert not batch.batched_enabled()
    batch.set_batched(True)
    assert batch.batched_enabled()
    batch.set_batched(False)
    assert not batch.batched_enabled()


# ----------------------------------------------------------------------
# multi_read vs scalar reads on the session surface
# ----------------------------------------------------------------------


def _table(rows: int = 12) -> Table:
    schema = make_schema("t", [int_col("id"), float_col("v")], ["id"])
    table = Table(schema)
    for i in range(rows):
        table.load_row({"id": i, "v": float(i)})
    return table


class TestMultiReadEquivalence:
    def test_matches_scalar_reads_including_overlay(self):
        table = _table()
        manager = ConcurrencyManager(0, EpochManager())
        pks = [(1,), (99,), (3,), (4,), (100,), (0,)]

        scalar = manager.begin_session(1)
        scalar.update(table, (3,), {"v": 33.0})
        scalar.delete(table, (4,))
        scalar.insert(table, {"id": 100, "v": 50.0})
        scalar_rows = [scalar.read(table, pk)[0] for pk in pks]

        vector = manager.begin_session(2)
        vector.update(table, (3,), {"v": 33.0})
        vector.delete(table, (4,))
        vector.insert(table, {"id": 100, "v": 50.0})
        vector_rows, examined = vector.multi_read(table, pks)

        assert vector_rows == scalar_rows
        assert examined == len(pks)
        # Identical validation footprint: same observed records, same
        # node checks for the misses.
        assert set(vector._reads) == set(scalar._reads)
        assert vector._node_checks.keys() == scalar._node_checks.keys()

    def test_footprint_validates_like_scalar_reads(self):
        table = _table()
        manager = ConcurrencyManager(0, EpochManager())
        session = manager.begin_session(1)
        rows, __ = session.multi_read(table, [(0,), (1,), (2,)])
        assert [r["v"] for r in rows] == [0.0, 1.0, 2.0]

        # A conflicting install invalidates the batched read set just
        # as it would invalidate scalar reads.
        writer = manager.begin_session(2)
        writer.update(table, (1,), {"v": 9.0})
        floor = manager.validate(writer)
        manager.install(writer, manager.tids.next_tid(1.0,
                                                      at_least=floor))

        from repro.errors import CCAbort
        with pytest.raises(CCAbort):
            manager.validate(session)

    def test_snapshot_session_matches_scalar_reads(self):
        table = _table()
        manager = ConcurrencyManager(0, EpochManager())
        writer = manager.begin_session(1)
        writer.update(table, (2,), {"v": 77.0})
        floor = manager.validate(writer)
        tid = manager.tids.next_tid(1.0, at_least=floor)
        manager.install(writer, tid)

        pks = [(0,), (2,), (99,)]
        scalar = SnapshotSession(10, 0, snapshot_tid=tid)
        scalar_rows = [scalar.read(table, pk)[0] for pk in pks]

        vector = SnapshotSession(11, 0, snapshot_tid=tid)
        vector_rows, examined = vector.multi_read(table, pks)

        assert vector_rows == scalar_rows
        assert vector_rows[1]["v"] == 77.0
        assert examined == len(pks)
        assert vector.snapshot_read_count == scalar.snapshot_read_count

    def test_stale_snapshot_ignores_newer_versions_batched(self):
        from repro.storage.store import StorageCoordinator

        table = _table()
        manager = ConcurrencyManager(0, EpochManager())
        old_tid = manager.tids.next_tid(1.0)
        # Pin the old snapshot so the install retains the superseded
        # version instead of GC-ing it.
        coordinator = StorageCoordinator()
        table.versioning = coordinator
        coordinator.pin(12, old_tid)

        writer = manager.begin_session(1)
        writer.update(table, (2,), {"v": 77.0})
        floor = manager.validate(writer)
        manager.install(writer, manager.tids.next_tid(2.0,
                                                      at_least=floor))

        stale = SnapshotSession(12, 0, snapshot_tid=old_tid)
        rows, __ = stale.multi_read(table, [(2,)])
        assert rows[0]["v"] == 2.0
