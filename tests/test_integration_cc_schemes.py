"""Integration: CC schemes × deployments, audited for serializability.

The deployment-virtualization claim extended to concurrency control:
the same applications (SmallBank and TPC-C new-order) run unchanged
under every (deployment strategy, cc_scheme) combination.  For every
CC-enabled scheme the :mod:`repro.formal` audit must certify the
recorded operation history as conflict-serializable; the explicit
``"none"`` scheme is the negative control — the same contended
SmallBank run demonstrably violates serializability and loses money.
"""

from __future__ import annotations

import random

import pytest

from repro.core.database import ReactorDatabase
from repro.core.deployment import (
    shared_everything_with_affinity,
    shared_everything_without_affinity,
    shared_nothing,
)
from repro.formal.audit import attach_recorder
from repro.workloads import smallbank as sb
from repro.workloads import tpcc

N = 8

DEPLOYMENTS = [
    ("shared-nothing",
     lambda scheme: shared_nothing(4, mpl=4, cc_scheme=scheme)),
    ("shared-everything-affinity",
     lambda scheme: shared_everything_with_affinity(
         4, cc_scheme=scheme)),
    ("shared-everything-rr",
     lambda scheme: shared_everything_without_affinity(
         4, cc_scheme=scheme)),
]

CC_SCHEMES = ("occ", "2pl_nowait", "2pl_waitdie")
ALL_SCHEMES = CC_SCHEMES + ("none",)


def _smallbank_specs(n_txns: int = 50) -> list[tuple]:
    """A mix of contended multi-transfers and independent deposits.

    The independent transactions guarantee progress even under the
    most abort-happy scheme (shared-nothing NO_WAIT), so the committed
    set is never vacuous.
    """
    rng = random.Random(1234)
    specs: list[tuple] = []
    for i in range(n_txns):
        if i % 2 == 0:
            variant = sb.VARIANTS[i % len(sb.VARIANTS)]
            src = sb.reactor_name(rng.randrange(N))
            dsts = []
            while len(dsts) < 2:
                dst = sb.reactor_name(rng.randrange(N))
                if dst != src and dst not in dsts:
                    dsts.append(dst)
            specs.append(sb.multi_transfer_spec(variant, src, dsts, 1.0))
        else:
            specs.append((sb.reactor_name(rng.randrange(N)),
                          "deposit_checking", (1.0,)))
    return specs


def _run_all(database: ReactorDatabase,
             specs: list[tuple]) -> list[bool | None]:
    """Submit every spec concurrently; returns per-spec commit flags."""
    outcomes: list[bool | None] = [None] * len(specs)

    def make_on_done(index: int):
        def on_done(root, committed, reason, result):
            outcomes[index] = committed
        return on_done

    for index, (reactor, proc, args) in enumerate(specs):
        database.submit(reactor, proc, *args,
                        on_done=make_on_done(index))
    database.scheduler.run()
    return outcomes


@pytest.mark.parametrize("scheme", ALL_SCHEMES)
@pytest.mark.parametrize("label,deployment_fn", DEPLOYMENTS)
def test_smallbank_runs_and_cc_schemes_are_serializable(
        label, deployment_fn, scheme):
    database = ReactorDatabase(deployment_fn(scheme),
                               sb.declarations(N))
    sb.load(database, N)
    recorder = attach_recorder(database)

    specs = _smallbank_specs()
    outcomes = _run_all(database, specs)
    assert None not in outcomes, "every transaction completes"
    assert any(outcomes), f"{label}/{scheme}: nothing committed"

    if scheme != "none":
        assert recorder.is_serializable(), (
            f"{label}/{scheme}: audit rejected the history")
        assert recorder.equivalent_serial_order() is not None
        # Transfers conserve money; each committed deposit adds 1.0.
        deposited = sum(
            1.0 for spec, committed in zip(specs, outcomes)
            if committed and spec[1] == "deposit_checking")
        assert sb.total_money(database, N) == pytest.approx(
            N * 2 * sb.INITIAL_BALANCE + deposited)


@pytest.mark.parametrize("scheme", ALL_SCHEMES)
@pytest.mark.parametrize("label,deployment_fn", DEPLOYMENTS)
def test_tpcc_new_order_runs_and_is_serializable(label, deployment_fn,
                                                 scheme):
    W = 2
    scale = tpcc.TpccScale(districts=2, customers_per_district=10,
                           items=30, orders_per_district=5,
                           last_names=5)
    database = ReactorDatabase(deployment_fn(scheme),
                               tpcc.declarations(W))
    tpcc.load(database, W, scale)
    recorder = attach_recorder(database)

    workload = tpcc.TpccWorkload(n_warehouses=W, scale=scale,
                                 mix=tpcc.NEW_ORDER_ONLY,
                                 remote_item_prob=0.2,
                                 invalid_item_prob=0.0)
    rng = random.Random(7)
    specs = [workload.new_order_spec(rng, w_id)
             for w_id in (1, 2) for __ in range(8)]
    outcomes = _run_all(database, specs)
    assert None not in outcomes
    assert any(outcomes), f"{label}/{scheme}: nothing committed"
    if scheme != "none":
        assert recorder.is_serializable(), (
            f"{label}/{scheme}: audit rejected the TPC-C history")


def test_none_scheme_violates_serializability_under_contention():
    """The negative control justifying the explicit scheme: hammering
    one hot account without CC loses updates, which both the audit and
    the money invariant detect."""
    database = ReactorDatabase(
        shared_everything_without_affinity(4, cc_scheme="none"),
        sb.declarations(N))
    sb.load(database, N)
    recorder = attach_recorder(database)

    hot = sb.reactor_name(0)
    others = [sb.reactor_name(i) for i in range(1, N)]
    specs = [sb.multi_transfer_spec("fully-async", hot,
                                    [others[i % (N - 1)],
                                     others[(i + 1) % (N - 1)]], 1.0)
             for i in range(40)]
    outcomes = _run_all(database, specs)
    assert all(outcomes), "no CC: nothing ever aborts"
    assert not recorder.is_serializable()
    assert sb.total_money(database, N) != pytest.approx(
        N * 2 * sb.INITIAL_BALANCE)
