"""Integration: serializability of concurrent executions.

The strongest end-to-end correctness check available to the runtime:
run a contended workload under each deployment, record which root
transactions committed and in which commit-TID order, then replay
exactly those transactions *serially* on a fresh database.  Conflict
serializability requires the concurrent execution's final state to
equal the state of some serial order — and Silo's OCC guarantees
equivalence to the commit-TID order specifically.
"""

from __future__ import annotations

import pytest

from repro.core.database import ReactorDatabase
from repro.core.deployment import (
    shared_everything_with_affinity,
    shared_everything_without_affinity,
    shared_nothing,
)
from repro.workloads import smallbank as sb

N = 8


def _fresh(deployment_fn) -> ReactorDatabase:
    database = ReactorDatabase(deployment_fn(), sb.declarations(N))
    sb.load(database, N)
    return database


def _final_state(database: ReactorDatabase) -> dict:
    return {
        (name, table): tuple(
            tuple(sorted(r.items()))
            for r in database.table_rows(name, table))
        for name in database.reactor_names()
        for table in ("savings", "checking")
    }


def _contended_specs(n_txns: int = 60) -> list[tuple]:
    """Transfers hammering a few hot accounts from many sources."""
    import random

    rng = random.Random(1234)
    specs = []
    for i in range(n_txns):
        variant = sb.VARIANTS[i % len(sb.VARIANTS)]
        src = sb.reactor_name(rng.randrange(N))
        dsts = []
        while len(dsts) < 2:
            dst = sb.reactor_name(rng.randrange(N))
            if dst != src and dst not in dsts:
                dsts.append(dst)
        specs.append(sb.multi_transfer_spec(variant, src, dsts, 1.0))
    return specs


DEPLOYMENTS = [
    ("shared-nothing", lambda: shared_nothing(4, mpl=4)),
    ("shared-everything-affinity",
     lambda: shared_everything_with_affinity(4)),
    ("shared-everything-rr",
     lambda: shared_everything_without_affinity(4)),
]


@pytest.mark.parametrize("label,deployment_fn", DEPLOYMENTS)
def test_concurrent_execution_equals_serial_replay(label,
                                                   deployment_fn):
    specs = _contended_specs()
    database = _fresh(deployment_fn)

    outcomes: list[dict] = []
    for index, (reactor, proc, args) in enumerate(specs):
        record: dict = {"index": index}
        outcomes.append(record)

        def on_done(root, committed, reason, result, record=record):
            record["committed"] = committed
            record["tid"] = root.commit_tid

        database.submit(reactor, proc, *args, on_done=on_done)
    database.scheduler.run()

    committed = [r for r in outcomes if r.get("committed")]
    assert committed, "some transactions must commit"
    committed.sort(key=lambda r: r["tid"])

    replay = _fresh(deployment_fn)
    for record in committed:
        reactor, proc, args = specs[record["index"]]
        replay.run(reactor, proc, *args)

    assert _final_state(database) == _final_state(replay), (
        f"{label}: concurrent execution is not equivalent to its "
        "commit-order serial execution"
    )


@pytest.mark.parametrize("label,deployment_fn", DEPLOYMENTS)
def test_money_conserved_under_concurrency(label, deployment_fn):
    database = _fresh(deployment_fn)
    for reactor, proc, args in _contended_specs(40):
        database.submit(reactor, proc, *args)
    database.scheduler.run()
    assert sb.total_money(database, N) == pytest.approx(
        N * 2 * sb.INITIAL_BALANCE)


def test_all_deployments_reach_identical_state_for_same_commits():
    """If the same subset of transactions commits, final states agree
    across architectures (run serially to force identical subsets)."""
    specs = _contended_specs(20)
    states = []
    for __, deployment_fn in DEPLOYMENTS:
        database = _fresh(deployment_fn)
        for reactor, proc, args in specs:
            database.run(reactor, proc, *args)
        states.append(_final_state(database))
    assert states[0] == states[1] == states[2]
