"""Online reactor migration: mechanism, edge cases, certification.

Covers the ISSUE 3 edge-case checklist: migration during an in-flight
cross-container transaction under every CC scheme, migration of a
reactor with sync replicas, back-to-back migrations of the same
reactor (including a return to a previous home, which exercises the
replica apply fences), and audit certification of histories that span
a live migration — plus config round-trips, error paths, parked-work
replay, and elastic rebalancing.
"""

from __future__ import annotations

import pytest

from repro.core.database import ReactorDatabase
from repro.core.deployment import DeploymentConfig, shared_nothing
from repro.core.reactor import ReactorType
from repro.errors import DeploymentError, MigrationError
from repro.formal.audit import (
    attach_recorder,
    certify_migration,
    certify_replication,
)
from repro.migration.config import MigrationConfig
from repro.relational import float_col, int_col, make_schema, str_col
from repro.replication import ReplicationConfig
from repro.workloads import smallbank as sb

CC_SCHEMES = ("occ", "2pl_nowait", "2pl_waitdie")


# ----------------------------------------------------------------------
# A small reactor type with controllable execution time
# ----------------------------------------------------------------------

def _counter_schema():
    return [
        make_schema("state",
                    [str_col("key"), int_col("value"),
                     float_col("weight")],
                    ["key"]),
    ]


COUNTER = ReactorType("MigCounter", _counter_schema)


@COUNTER.procedure
def bump(ctx, amount: int = 1) -> int:
    row = ctx.lookup("state", "n")
    new = row["value"] + amount
    ctx.update("state", "n", {"value": new})
    return new


@COUNTER.procedure(read_only=True)
def read_value(ctx) -> int:
    return ctx.lookup("state", "n")["value"]


@COUNTER.procedure
def slow_bump(ctx, micros: float, amount: int = 1):
    """Hold the reactor in an in-flight transaction for ``micros``."""
    row = ctx.lookup("state", "n")
    yield ctx.compute(micros)
    ctx.update("state", "n", {"value": row["value"] + amount})
    return row["value"] + amount


@COUNTER.procedure
def bump_other(ctx, other: str, micros: float = 0.0):
    """Cross-reactor transaction: bump self, then the other reactor."""
    row = ctx.lookup("state", "n")
    ctx.update("state", "n", {"value": row["value"] + 1})
    if micros:
        yield ctx.compute(micros)
    fut = yield ctx.call(other, "bump", 1)
    value = yield ctx.get(fut)
    return value


def _declarations(n: int):
    return [(f"m{i}", COUNTER) for i in range(n)]


def _load(database: ReactorDatabase, n: int) -> None:
    for i in range(n):
        database.load(f"m{i}", "state",
                      [{"key": "n", "value": 0, "weight": 1.0}])


def _value(database: ReactorDatabase, name: str) -> int:
    rows = database.table_rows(name, "state")
    return rows[0]["value"]


def _submit_tracked(database, outcomes, reactor, proc, *args):
    def on_done(root, committed, reason, result):
        outcomes.append((committed, reason))
    database.submit(reactor, proc, *args, on_done=on_done)


# ----------------------------------------------------------------------
# Basic mechanism
# ----------------------------------------------------------------------

class TestBasicMigration:
    def test_moves_state_and_routing(self):
        db = ReactorDatabase(shared_nothing(3), _declarations(6))
        _load(db, 6)
        for __ in range(4):
            db.run("m0", "bump")
        old = db.reactor("m0")
        assert old.container.container_id == 0

        migration = db.migrate("m0", 2)
        db.scheduler.run()
        assert migration.done
        new = db.reactor("m0")
        assert new is not old
        assert new.container.container_id == 2
        assert new.epoch == old.epoch + 1
        assert old.retired and old.migrated_to is new
        assert _value(db, "m0") == 4
        # The successor keeps serving.
        assert db.run("m0", "bump") == 5

    def test_migration_event_accounting(self):
        db = ReactorDatabase(shared_nothing(2), _declarations(2))
        _load(db, 2)
        db.run("m0", "bump")
        db.migrate("m0", 1)
        db.scheduler.run()
        stats = db.migration_stats()
        assert stats["completed"] == 1
        (event,) = stats["events"]
        assert event["rows_copied"] == 1
        assert event["src"] == 0 and event["dst"] == 1
        assert event["state"] == "done"

    def test_parked_roots_replay_in_order(self):
        db = ReactorDatabase(shared_nothing(2), _declarations(2))
        _load(db, 2)
        db.run("m0", "bump")
        outcomes: list = []
        db.migrate("m0", 1)
        for amount in (10, 100, 1000):
            _submit_tracked(db, outcomes, "m0", "bump", amount)
        assert db.migration_stats()["roots_parked"] == 3
        db.scheduler.run()
        assert [c for c, __ in outcomes] == [True, True, True]
        assert _value(db, "m0") == 1111

    def test_migration_drains_inflight_source_transaction(self):
        """A transaction already running on the reactor completes at
        the source before the copy; its write is in the snapshot."""
        db = ReactorDatabase(shared_nothing(2), _declarations(2))
        _load(db, 2)
        outcomes: list = []
        _submit_tracked(db, outcomes, "m0", "slow_bump", 400.0, 7)
        # Start the migration while the slow transaction runs.
        db.scheduler.run(until=10.0)
        migration = db.migrate("m0", 1)
        db.scheduler.run()
        assert outcomes == [(True, None)]
        assert migration.done
        assert migration.drain_polls > 0
        assert _value(db, "m0") == 7

    def test_certify_migration_detects_tampering(self):
        db = ReactorDatabase(shared_nothing(2), _declarations(2))
        _load(db, 2)
        db.run("m0", "bump")
        db.migrate("m0", 1)
        db.scheduler.run()
        assert certify_migration(db)["ok"]
        # Corrupt the live copy behind the log's back.
        table = db.reactor("m0").table("state")
        record = table.get_record(("n",))
        record.value = dict(record.value, value=999)
        report = certify_migration(db)
        assert not report["ok"]
        assert not report["migrations"][-1]["state_ok"]


# ----------------------------------------------------------------------
# Error paths
# ----------------------------------------------------------------------

class TestMigrationErrors:
    def _db(self):
        db = ReactorDatabase(shared_nothing(2), _declarations(2))
        _load(db, 2)
        return db

    def test_same_container_refused(self):
        with pytest.raises(MigrationError, match="already homed"):
            self._db().migrate("m0", 0)

    def test_unknown_destination_refused(self):
        with pytest.raises(MigrationError, match="does not exist"):
            self._db().migrate("m0", 5)

    def test_double_migration_refused(self):
        db = self._db()
        db.migrate("m0", 1)
        with pytest.raises(MigrationError, match="already migrating"):
            db.migrate("m0", 1)
        db.scheduler.run()

    def test_failed_destination_refused(self):
        db = self._db()
        db.containers[1].failed = True
        with pytest.raises(MigrationError, match="destination"):
            db.migrate("m0", 1)

    def test_migration_config_validation(self):
        with pytest.raises(DeploymentError):
            MigrationConfig(imbalance_threshold=0.5)
        with pytest.raises(DeploymentError):
            MigrationConfig(drain_poll_us=0)
        with pytest.raises(DeploymentError):
            MigrationConfig(max_moves_per_check=0)


# ----------------------------------------------------------------------
# Deployment config round-trip
# ----------------------------------------------------------------------

class TestMigrationConfigRoundTrip:
    def test_json_round_trip(self):
        config = MigrationConfig(
            drain_poll_us=2.5, imbalance_threshold=1.8,
            max_moves_per_check=2, check_interval_us=5_000.0,
            auto_rebalance_horizon_us=50_000.0)
        deployment = shared_nothing(2, migration=config)
        restored = DeploymentConfig.from_json(deployment.to_json())
        assert restored.migration == config
        assert restored.migration.auto_rebalance

    def test_defaults_round_trip(self):
        deployment = shared_nothing(2)
        restored = DeploymentConfig.from_json(deployment.to_json())
        assert restored.migration == deployment.migration
        assert not restored.migration.auto_rebalance

    def test_unknown_migration_key_rejected(self):
        data = shared_nothing(2).to_dict()
        data["migration"]["typo"] = 1
        with pytest.raises(DeploymentError, match="unknown migration"):
            DeploymentConfig.from_dict(data)


# ----------------------------------------------------------------------
# Migration during an in-flight cross-container transaction
# ----------------------------------------------------------------------

class TestInflightCrossContainer:
    @pytest.mark.parametrize("scheme", CC_SCHEMES)
    def test_parked_subcall_spans_migration(self, scheme):
        """A cross-container transaction whose sub-call arrives while
        the callee migrates parks, replays at the destination, and
        commits through 2PC spanning the migration."""
        db = ReactorDatabase(shared_nothing(3, cc_scheme=scheme),
                             _declarations(3))
        _load(db, 3)
        recorder = attach_recorder(db)
        # Hold m1 in flight so the migration must drain.
        outcomes: list = []
        _submit_tracked(db, outcomes, "m1", "slow_bump", 300.0)
        # m0 computes first, then calls m1 — the call lands mid-drain.
        _submit_tracked(db, outcomes, "m0", "bump_other", "m1", 50.0)
        db.scheduler.run(until=5.0)
        migration = db.migrate("m1", 2)
        db.scheduler.run()
        assert migration.done
        assert [c for c, __ in outcomes] == [True, True]
        assert db.migration_stats()["subcalls_parked"] == 1
        assert _value(db, "m1") == 2  # slow_bump + bump_other's bump
        assert _value(db, "m0") == 1
        assert db.reactor("m1").container.container_id == 2
        assert recorder.is_serializable()
        assert certify_migration(db)["ok"]

    def test_subcall_in_transport_flight_blocks_drain(self):
        """A sub-call dispatched toward the source but still paying
        transport delay is invisible to the in-flight set and the
        executor queues — the drain barrier must still wait for it
        (it registered on the reactor at dispatch, Section 2.2.4), or
        its commit would land in the source copy after the snapshot
        and be lost at the flip."""
        db = ReactorDatabase(shared_nothing(3), _declarations(3))
        _load(db, 3)
        outcomes: list = []

        def on_done(root, committed, reason, result):
            outcomes.append((committed, reason))

        root = db.submit("m0", "bump_other", "m1", 50.0,
                         on_done=on_done)
        # Step until the call to m1 was dispatched (remote_calls set at
        # dispatch; arrival is cs + transport_delay = 2.0us later).
        t = 0.0
        while root.remote_calls == 0 and t < 500.0:
            t += 0.5
            db.scheduler.run(until=t)
        assert root.remote_calls == 1
        target = db.reactor("m1")
        assert root.txn_id not in target.inflight_roots
        migration = db.migrate("m1", 2)
        db.scheduler.run()
        assert migration.done
        assert outcomes == [(True, None)]
        # The in-transport sub-call ran at the source before the copy:
        # its write is in the snapshot, nothing was torn off.
        assert _value(db, "m1") == 1
        report = certify_migration(db)
        assert report["ok"]
        assert report["migrations"][-1]["src_quiet_ok"]

    @pytest.mark.parametrize("scheme", CC_SCHEMES)
    def test_transaction_that_touched_source_drains(self, scheme):
        """A transaction that already touched the migrating reactor
        keeps running at the source and completes before the flip."""
        db = ReactorDatabase(shared_nothing(3, cc_scheme=scheme),
                             _declarations(3))
        _load(db, 3)
        outcomes: list = []
        # bump_other touches m1 (self) immediately, then stalls before
        # calling m2 — when the call happens, m1 (not m2) is migrating,
        # and the root holds a stake in m1 only.
        _submit_tracked(db, outcomes, "m1", "bump_other", "m2", 200.0)
        db.scheduler.run(until=10.0)
        migration = db.migrate("m1", 0)
        db.scheduler.run()
        assert migration.done
        assert outcomes == [(True, None)]
        assert _value(db, "m1") == 1
        assert _value(db, "m2") == 1
        assert certify_migration(db)["ok"]


# ----------------------------------------------------------------------
# Replication
# ----------------------------------------------------------------------

class TestMigrationWithReplicas:
    def _db(self, mode="sync", n=3, **kwargs):
        replication = ReplicationConfig(
            replicas_per_container=1, mode=mode, **kwargs)
        db = ReactorDatabase(
            shared_nothing(n, replication=replication),
            _declarations(n))
        _load(db, n)
        return db

    def test_sync_replicas_rehome(self):
        db = self._db("sync")
        for __ in range(3):
            db.run("m0", "bump")
        db.migrate("m0", 1)
        db.scheduler.run()
        # Post-migration commits replicate at the new home.
        for __ in range(2):
            db.run("m0", "bump")
        db.scheduler.run()
        replica = db.replication.replicas[1][0]
        shadow = replica.shadow("m0")
        assert shadow is not None
        assert shadow.table("state").rows()[0]["value"] == 5
        report = certify_replication(db)
        assert report["ok"]
        assert certify_migration(db)["ok"]

    def test_failover_of_new_home_keeps_migrated_reactor(self):
        db = self._db("sync")
        db.run("m0", "bump")
        db.migrate("m0", 1)
        db.scheduler.run()
        db.run("m0", "bump")
        db.replication.kill_and_promote(1)
        db.scheduler.run()
        # The promoted replica serves the migrated reactor.
        assert db.reactor("m0").container.container_id == 1
        assert _value(db, "m0") == 2
        assert db.run("m0", "bump") == 3
        assert certify_replication(db)["ok"]

    def test_source_failover_mid_drain_cancels_migration(self):
        db = self._db("sync")
        outcomes: list = []
        _submit_tracked(db, outcomes, "m0", "slow_bump", 500.0)
        db.scheduler.run(until=5.0)
        migration = db.migrate("m0", 1)
        # Park a root during the drain, then kill the source.
        _submit_tracked(db, outcomes, "m0", "bump", 10)
        db.scheduler.at(20.0, db.replication.kill_and_promote, 0)
        db.scheduler.run()
        assert migration.state == "cancelled"
        assert db.migration_stats()["cancelled"] == 1
        # The parked root replayed against the promoted primary.
        assert db.reactor("m0").container.container_id == 0
        committed = [c for c, __ in outcomes]
        assert committed.count(True) >= 1
        assert _value(db, "m0") >= 10

    def test_read_from_replicas_survives_migration(self):
        db = self._db("async", read_from_replicas=True,
                      async_lag_us=10.0)
        db.run("m0", "bump")
        db.scheduler.run()
        db.migrate("m0", 2)
        db.scheduler.run()
        db.run("m0", "bump")
        db.scheduler.run()
        # Read-only roots route to the new home's replica.
        before = db.replication.stats.reads_routed_to_replicas
        value = db.run("m0", "read_value")
        assert value == 2
        assert db.replication.stats.reads_routed_to_replicas \
            == before + 1


# ----------------------------------------------------------------------
# Back-to-back migrations
# ----------------------------------------------------------------------

class TestBackToBack:
    def test_chain_and_return_home_with_async_replicas(self):
        """0 -> 1 -> 2 -> 0 with traffic between hops: the return to a
        previous home exercises the replica apply fences (stale history
        for the reactor must not replay over the new snapshot)."""
        replication = ReplicationConfig(
            replicas_per_container=1, mode="async", async_lag_us=40.0)
        db = ReactorDatabase(
            shared_nothing(3, replication=replication),
            _declarations(3))
        _load(db, 3)
        expected = 0
        for dst in (1, 2, 0):
            for __ in range(3):
                db.run("m0", "bump")
                expected += 1
            migration = db.migrate("m0", dst)
            db.scheduler.run()
            assert migration.done
            assert db.reactor("m0").container.container_id == dst
        for __ in range(2):
            db.run("m0", "bump")
            expected += 2 - 1
        db.scheduler.run()
        assert _value(db, "m0") == 11
        assert db.reactor("m0").epoch == 3
        assert certify_replication(db)["ok"]
        report = certify_migration(db)
        assert report["ok"]
        superseded = [m for m in report["migrations"]
                      if m.get("superseded")]
        assert len(superseded) == 2

    def test_immediate_requeue_of_parked_work(self):
        """Roots parked during migration N that replay while migration
        N+1 starts are re-parked, not lost."""
        db = ReactorDatabase(shared_nothing(3), _declarations(3))
        _load(db, 3)
        outcomes: list = []
        first = db.migrate("m0", 1)

        def chain(migration):
            # Fires at the flip of the first migration, before the
            # parked roots replay (they wait out mig_replay_per_txn).
            db.migrate("m0", 2)

        first.on_done = chain
        for __ in range(3):
            _submit_tracked(db, outcomes, "m0", "bump")
        db.scheduler.run()
        assert [c for c, __ in outcomes] == [True, True, True]
        assert _value(db, "m0") == 3
        assert db.reactor("m0").container.container_id == 2


# ----------------------------------------------------------------------
# Audit certification of histories spanning a migration
# ----------------------------------------------------------------------

class TestAuditAcrossMigration:
    @pytest.mark.parametrize("scheme", CC_SCHEMES)
    def test_concurrent_history_spanning_migration_serializable(
            self, scheme):
        n = 6
        db = ReactorDatabase(
            shared_nothing(3, cc_scheme=scheme),
            sb.declarations(n))
        sb.load(db, n)
        recorder = attach_recorder(db)
        outcomes: list = []
        specs = []
        for i in range(30):
            src = sb.reactor_name(i % n)
            dst = sb.reactor_name((i + 1) % n)
            if i % 3 == 0:
                specs.append((src, "transfer", (src, dst, 1.0)))
            else:
                specs.append((src, "deposit_checking", (1.0,)))
        for index, (reactor, proc, args) in enumerate(specs):
            db.scheduler.at(float(index) * 7.0, _submit_tracked, db,
                            outcomes, reactor, proc, *args)
        db.scheduler.at(40.0, db.migrate, "cust0", 1)
        db.scheduler.at(120.0, db.migrate, "cust1", 2)
        db.scheduler.run()
        committed = [c for c, __ in outcomes]
        assert committed.count(True) >= 20
        assert db.migration_stats()["completed"] == 2
        assert recorder.is_serializable(), (
            f"history spanning a migration not serializable "
            f"under {scheme}")
        assert certify_migration(db)["ok"]
        assert sb.total_money(db, n) == pytest.approx(
            n * 2 * sb.INITIAL_BALANCE
            + sum(1.0 for i in range(30)
                  if i % 3 != 0 and committed[i]))


# ----------------------------------------------------------------------
# Elastic rebalancing
# ----------------------------------------------------------------------

class TestRebalance:
    def test_rebalance_moves_hot_reactors(self):
        db = ReactorDatabase(shared_nothing(3), _declarations(6))
        _load(db, 6)
        # Modulo placement homes m0/m3 in c0; make both hot — a
        # *placement* skew a migration can fix (moving one of them
        # halves the hot container's load).
        for __ in range(30):
            db.run("m0", "bump")
            db.run("m3", "bump")
        for i in (1, 2, 4, 5):
            db.run(f"m{i}", "bump")
        moves = db.rebalance()
        db.scheduler.run()
        assert 1 <= len(moves) <= 4
        assert any(m.reactor_name in ("m0", "m3") for m in moves)
        assert all(m.done for m in moves)
        # The hot pair no longer shares a container.
        assert db.reactor("m0").container.container_id \
            != db.reactor("m3").container.container_id
        stats = db.migration_stats()
        assert stats["rebalance_checks"] == 1
        assert stats["rebalance_moves"] == len(moves)
        # The window reset: an immediate re-check moves nothing.
        assert db.rebalance() == []

    def test_rebalance_leaves_inherent_skew_alone(self):
        """One reactor generating nearly all load is inherent skew, not
        placement skew: moving it would only move the bottleneck, so
        rebalance refuses."""
        db = ReactorDatabase(shared_nothing(3), _declarations(6))
        _load(db, 6)
        for __ in range(60):
            db.run("m0", "bump")
        for i in range(1, 6):
            db.run(f"m{i}", "bump")
        moves = db.rebalance()
        db.scheduler.run()
        assert all(m.reactor_name != "m0" for m in moves)
        assert db.reactor("m0").container.container_id == 0

    def test_rebalance_skips_unfixable_container_not_the_check(self):
        """An inherently skewed container must not mask a second,
        genuinely fixable overload elsewhere in the same check."""
        db = ReactorDatabase(shared_nothing(4), _declarations(8))
        _load(db, 8)
        # Modulo placement over 4 containers: m0/m4 -> c0, m1/m5 -> c1.
        # c0: one inherently hot reactor (unmovable); c1: two hot
        # reactors (placement skew a migration fixes).
        for __ in range(80):
            db.run("m0", "bump")
        for __ in range(30):
            db.run("m1", "bump")
            db.run("m5", "bump")
        for i in (2, 3, 6, 7):
            db.run(f"m{i}", "bump")
        moves = db.rebalance()
        db.scheduler.run()
        assert any(m.reactor_name in ("m1", "m5") for m in moves)
        assert db.reactor("m1").container.container_id \
            != db.reactor("m5").container.container_id
        assert db.reactor("m0").container.container_id == 0

    def test_rebalance_noop_when_balanced(self):
        db = ReactorDatabase(shared_nothing(3), _declarations(6))
        _load(db, 6)
        for i in range(6):
            db.run(f"m{i}", "bump")
        assert db.rebalance() == []

    def test_elastic_policy_triggers_migration(self):
        config = MigrationConfig(check_interval_us=2_000.0,
                                 imbalance_threshold=1.2)
        db = ReactorDatabase(
            shared_nothing(3, migration=config), _declarations(6))
        _load(db, 6)
        db.migration.policy.start(10_000.0)
        outcomes: list = []
        for i in range(80):
            target = "m0" if i % 2 else "m3"
            db.scheduler.at(float(i) * 20.0, _submit_tracked, db,
                            outcomes, target, "bump")
        db.scheduler.run()
        assert db.migration.policy.checks >= 1
        assert db.migration_stats()["completed"] >= 1
        homes = {db.reactor(name).container.container_id
                 for name in ("m0", "m3")}
        assert homes != {0}
        assert all(c for c, __ in outcomes)
        assert _value(db, "m0") + _value(db, "m3") == 80

    def test_auto_rebalance_from_deployment_config(self):
        config = MigrationConfig(check_interval_us=2_000.0,
                                 imbalance_threshold=1.2,
                                 auto_rebalance_horizon_us=10_000.0)
        db = ReactorDatabase(
            shared_nothing(3, migration=config), _declarations(6))
        _load(db, 6)
        assert db.migration.policy.armed
        outcomes: list = []
        for i in range(80):
            target = "m0" if i % 2 else "m3"
            db.scheduler.at(float(i) * 20.0, _submit_tracked, db,
                            outcomes, target, "bump")
        db.scheduler.run()
        assert db.migration_stats()["completed"] >= 1
        homes = {db.reactor(name).container.container_id
                 for name in ("m0", "m3")}
        assert homes != {0}
