"""Integration tests of multi-version snapshot reads.

The storage engine threaded through the runtime: abort-free snapshot
reads under contention, transaction-consistent cuts, the
``snapshot_reads`` deployment toggle on every scheme, read-only
enforcement on all mutation paths, replica bounded-staleness reads,
recovery and migration over the versioned engine, and the black-box
snapshot-isolation certificate (including tamper rejection).
"""

from __future__ import annotations

import dataclasses
from types import SimpleNamespace

import pytest

from repro.concurrency.base import CCSession
from repro.concurrency.mvcc import SnapshotSession
from repro.core.database import ReactorDatabase
from repro.core.deployment import (
    DeploymentConfig,
    shared_everything_with_affinity,
    shared_nothing,
)
from repro.core.reactor import ReactorType
from repro.durability.checkpoint import take_checkpoint
from repro.durability.recovery import enable_durability, recover
from repro.errors import DeploymentError, ReadOnlyViolation
from repro.formal.audit import certify_migration, \
    certify_snapshot_isolation
from repro.relational import float_col, make_schema, str_col
from repro.replication import ReplicationConfig
from repro.workloads import smallbank


def _kv_schema():
    return [make_schema("kv", [str_col("k"), float_col("v")], ["k"])]


PAIR = ReactorType("Pair", _kv_schema)


@PAIR.procedure(read_only=True)
def get_v(ctx):
    return ctx.lookup("kv", ctx.my_name())["v"]


@PAIR.procedure(read_only=True)
def get_slow(ctx):
    """Stall, then read — keeps the caller blocked remotely for long
    enough that a writer can slip a commit into its window."""
    yield ctx.compute(500.0)
    return ctx.lookup("kv", ctx.my_name())["v"]


@PAIR.procedure(read_only=True)
def slow_sum(ctx, other):
    """Read self, stall, read the partner — a long validated read set
    under OCC, a stable snapshot under mvocc."""
    mine = ctx.lookup("kv", ctx.my_name())["v"]
    yield ctx.compute(500.0)
    fut = yield ctx.call(other, "get_v")
    theirs = yield ctx.get(fut)
    return mine + theirs


@PAIR.procedure(read_only=True)
def double_check(ctx, other):
    """Read self, block on the partner's slow read, read self again —
    the second read must still resolve at the pinned snapshot even if
    a writer committed (or a failover re-homed the tables) in
    between."""
    first = ctx.lookup("kv", ctx.my_name())["v"]
    fut = yield ctx.call(other, "get_slow")
    theirs = yield ctx.get(fut)
    second = ctx.lookup("kv", ctx.my_name())["v"]
    return first + second + theirs


@PAIR.procedure(read_only=True)
def sum_with_slow_partner(ctx, other):
    """Read self, then block on the partner's slow read — the
    executor is released, so a writer commits inside the window."""
    mine = ctx.lookup("kv", ctx.my_name())["v"]
    fut = yield ctx.call(other, "get_slow")
    theirs = yield ctx.get(fut)
    return mine + theirs


@PAIR.procedure
def set_v(ctx, value):
    ctx.update("kv", ctx.my_name(), {"v": value})


@PAIR.procedure
def set_both(ctx, other, value):
    ctx.update("kv", ctx.my_name(), {"v": value})
    fut = yield ctx.call(other, "set_v", value)
    yield ctx.get(fut)


@PAIR.procedure(read_only=True)
def bad_update(ctx):
    ctx.update("kv", ctx.my_name(), {"v": -1.0})


@PAIR.procedure(read_only=True)
def bad_insert(ctx):
    ctx.insert("kv", {"k": "rogue", "v": -1.0})


@PAIR.procedure(read_only=True)
def bad_delete(ctx):
    ctx.delete("kv", ctx.my_name())


def _pair_db(scheme: str, snapshot_reads: bool = False,
             replication=None) -> ReactorDatabase:
    database = ReactorDatabase(
        shared_nothing(2, cc_scheme=scheme,
                       snapshot_reads=snapshot_reads,
                       replication=replication),
        [("a", PAIR), ("b", PAIR)])
    database.load("a", "kv", [{"k": "a", "v": 1.0}])
    database.load("b", "kv", [{"k": "b", "v": 2.0}])
    return database


def _submit_collect(database, outcomes, key, reactor, proc, *args):
    def on_done(root, committed, reason, result):
        outcomes[key] = (committed, reason, result)
    database.submit(reactor, proc, *args, on_done=on_done)


def _overlap_reader_with_writer(database):
    """Start a slow read-only root, commit a conflicting write inside
    its window, run to completion; returns the outcome map."""
    outcomes: dict = {}
    _submit_collect(database, outcomes, "reader", "a", "slow_sum", "b")
    database.scheduler.at(
        100.0, _submit_collect, database, outcomes, "writer",
        "a", "set_both", "b", 7.0)
    database.scheduler.run()
    return outcomes


def _overlap_blocked_reader_with_writer(database):
    """The reader blocks on a slow remote read of ``b`` while a writer
    overwrites the already-read ``a`` and fully commits."""
    outcomes: dict = {}
    _submit_collect(database, outcomes, "reader", "a",
                    "sum_with_slow_partner", "b")
    database.scheduler.at(
        100.0, _submit_collect, database, outcomes, "writer",
        "a", "set_v", 7.0)
    database.scheduler.run()
    return outcomes


class TestSnapshotReadsUnderContention:
    def test_occ_reader_aborts_on_overlapping_writer(self):
        database = _pair_db("occ")
        outcomes = _overlap_blocked_reader_with_writer(database)
        assert outcomes["writer"][0]
        assert not outcomes["reader"][0]
        assert database.version_stats()["read_only_aborts"] == {
            "occ": 1}

    def test_mvocc_reader_survives_the_same_interleaving(self):
        database = _pair_db("mvocc")
        outcomes = _overlap_blocked_reader_with_writer(database)
        assert outcomes["writer"][0]
        committed, __, result = outcomes["reader"]
        assert committed
        assert result == pytest.approx(3.0)  # pre-writer snapshot

    def test_mvocc_reader_commits_on_consistent_snapshot(self):
        database = _pair_db("mvocc")
        outcomes = _overlap_reader_with_writer(database)
        assert outcomes["writer"][0]
        committed, __, result = outcomes["reader"]
        assert committed
        # The pinned snapshot predates the writer: both reads resolve
        # to the old images (1+2), never a torn 1+7 or 7+2.
        assert result == pytest.approx(3.0)
        stats = database.version_stats()
        assert stats["read_only_aborts"] == {}
        assert stats["snapshot_roots"] == 1
        assert stats["pinned_snapshots"] == 0  # unpinned at completion

    @pytest.mark.parametrize("scheme", ["occ", "2pl_nowait",
                                        "2pl_waitdie", "none"])
    def test_snapshot_reads_toggle_works_under_any_scheme(self, scheme):
        database = _pair_db(scheme, snapshot_reads=True)
        outcomes = _overlap_reader_with_writer(database)
        assert outcomes["writer"][0]
        committed, __, result = outcomes["reader"]
        assert committed
        assert result == pytest.approx(3.0)
        assert database.version_stats()["read_only_aborts"] == {}

    def test_commits_after_pin_exceed_the_snapshot(self):
        database = _pair_db("mvocc")
        outcomes = _overlap_reader_with_writer(database)
        assert outcomes["writer"][0]
        reader_snapshot = min(
            e.snapshot_tid
            for e in (database.storage.audit or [])) \
            if database.storage.audit else None
        # Even without the audit, the generators were advanced at pin
        # time: the writer's commit TID exceeds the global watermark
        # the reader pinned.
        writes_tid = database.containers[0].concurrency.tids.last
        assert writes_tid > 0
        if reader_snapshot is not None:
            assert writes_tid > reader_snapshot

    def test_versions_are_gcd_after_readers_finish(self):
        database = _pair_db("mvocc")
        _overlap_reader_with_writer(database)
        database.run("a", "set_both", "b", 8.0)  # prunes at install
        database.gc_versions()
        assert database.version_stats()["live_versions"] == 0


class TestReadOnlyEnforcement:
    """Satellite regression: every mutation path of a read-only root
    raises the same typed error from ``repro.errors``."""

    def test_snapshot_session_refuses_all_mutations(self):
        database = _pair_db("mvocc")
        table = database.reactor("a").table("kv")
        session = SnapshotSession(1, 0, snapshot_tid=10)
        with pytest.raises(ReadOnlyViolation):
            session.insert(table, {"k": "x", "v": 0.0})
        with pytest.raises(ReadOnlyViolation):
            session.update(table, ("a",), {"v": 0.0})
        with pytest.raises(ReadOnlyViolation):
            session.delete(table, ("a",))

    def test_validated_session_refuses_all_mutations(self):
        database = _pair_db("occ")
        table = database.reactor("a").table("kv")
        manager = database.containers[0].concurrency
        session = manager.begin_session(1)
        session.owner = SimpleNamespace(read_only=True)
        with pytest.raises(ReadOnlyViolation):
            session.insert(table, {"k": "x", "v": 0.0})
        with pytest.raises(ReadOnlyViolation):
            session.update(table, ("a",), {"v": 0.0})
        with pytest.raises(ReadOnlyViolation):
            session.delete(table, ("a",))

    @pytest.mark.parametrize("proc", ["bad_insert", "bad_update",
                                      "bad_delete"])
    @pytest.mark.parametrize("scheme", ["occ", "mvocc"])
    def test_read_only_roots_abort_through_the_runtime(self, scheme,
                                                       proc):
        database = _pair_db(scheme)
        outcomes: dict = {}
        _submit_collect(database, outcomes, "bad", "a", proc)
        database.scheduler.run()
        committed, reason, __ = outcomes["bad"]
        assert not committed
        assert "read-only" in reason or "snapshot" in reason
        # State untouched.
        assert database.table_rows("a", "kv") == [{"k": "a", "v": 1.0}]

    def test_replica_routed_root_aborts_with_typed_error(self):
        database = _pair_db(
            "occ",
            replication=ReplicationConfig(
                replicas_per_container=1, mode="async",
                read_from_replicas=True))
        outcomes: dict = {}
        _submit_collect(database, outcomes, "bad", "a", "bad_update")
        database.scheduler.run()
        committed, reason, __ = outcomes["bad"]
        assert not committed
        assert "read-only" in reason
        assert database.replication.stats.reads_routed_to_replicas == 1


class TestDeploymentThreading:
    def test_snapshot_reads_round_trips_dict_and_json(self):
        config = shared_nothing(2, cc_scheme="2pl_nowait",
                                snapshot_reads=True)
        assert config.snapshot_reads_effective
        restored = DeploymentConfig.from_dict(config.to_dict())
        assert restored.snapshot_reads is True
        assert restored.cc_scheme == "2pl_nowait"
        again = DeploymentConfig.from_json(config.to_json())
        assert again.snapshot_reads is True

    def test_mvocc_round_trips_and_implies_snapshots(self):
        config = shared_everything_with_affinity(2, cc_scheme="mvocc")
        assert not config.snapshot_reads
        assert config.snapshot_reads_effective
        restored = DeploymentConfig.from_dict(config.to_dict())
        assert restored.cc_scheme == "mvocc"
        assert restored.snapshot_reads_effective

    def test_read_from_replicas_accepts_mvocc_and_snapshotting_2pl(self):
        replication = ReplicationConfig(replicas_per_container=1,
                                        mode="async",
                                        read_from_replicas=True)
        shared_nothing(2, cc_scheme="mvocc", replication=replication)
        shared_nothing(2, cc_scheme="2pl_nowait", snapshot_reads=True,
                       replication=replication)
        with pytest.raises(DeploymentError, match="read_from_replicas"):
            shared_nothing(2, cc_scheme="2pl_nowait",
                           replication=replication)


class TestReplicaSnapshotReads:
    def test_bounded_staleness_read_at_applied_watermark(self):
        """A replica-routed snapshot read pins the replica's applied
        watermark: it sees the applied prefix, not in-flight ships."""
        database = ReactorDatabase(
            shared_everything_with_affinity(
                2, cc_scheme="mvocc",
                replication=ReplicationConfig(
                    replicas_per_container=1, mode="async",
                    read_from_replicas=True, async_lag_us=5_000.0)),
            smallbank.declarations(4))
        smallbank.load(database, 4)
        outcomes: dict = {}
        _submit_collect(database, outcomes, "write", "cust0",
                        "deposit_checking", 500.0)
        # Submitted well inside the async apply lag: the replica has
        # not applied the deposit yet.
        database.scheduler.at(
            1_000.0, _submit_collect, database, outcomes, "read",
            "cust0", "balance")
        database.scheduler.run()
        assert outcomes["write"][0]
        committed, __, balance = outcomes["read"]
        assert committed
        assert balance == pytest.approx(2 * smallbank.INITIAL_BALANCE)
        assert database.replication.stats.reads_routed_to_replicas == 1
        assert database.version_stats()["read_only_aborts"] == {}
        # The replica eventually applied everything (scheduler drained).
        final = database.run("cust0", "balance")
        assert final == pytest.approx(
            2 * smallbank.INITIAL_BALANCE + 500.0)


class TestPromotionTidFloor:
    def test_promoted_replica_commits_above_pinned_snapshots(self):
        """Regression: a lagging replica promoted mid-run must not
        issue commit TIDs at or below an in-flight pinned snapshot —
        promotion advances its generator past the global watermark."""
        database = _pair_db(
            "mvocc",
            replication=ReplicationConfig(
                replicas_per_container=1, mode="async",
                async_lag_us=50_000.0))
        database.enable_snapshot_audit()
        outcomes: dict = {}
        # A write on b advances container 1's primary generator; the
        # replica (big async lag) applies nothing before the kill.
        _submit_collect(database, outcomes, "w1", "b", "set_v", 5.0)
        # A slow reader pins the global watermark and stays in flight
        # across the failover.
        database.scheduler.at(100.0, _submit_collect, database,
                              outcomes, "reader", "a", "slow_sum", "a")
        database.scheduler.at(
            300.0, database.replication.kill_and_promote, 1)
        post: dict = {}

        def on_w2(root, committed, reason, result):
            post["committed"] = committed
            post["commit_tid"] = root.commit_tid

        database.scheduler.at(
            400.0, lambda: database.submit("b", "set_v", 6.0,
                                           on_done=on_w2))
        database.scheduler.run()
        assert outcomes["w1"][0]
        assert outcomes["reader"][0]
        assert post["committed"]
        snapshot_tid = max(e.snapshot_tid
                           for e in database.storage.audit)
        assert post["commit_tid"] > snapshot_tid


class TestPromotionPinRescope:
    def test_in_flight_replica_reader_survives_promotion(self):
        """Regression: a snapshot reader served on a replica that gets
        promoted mid-read keeps its version retention — post-promotion
        installs must not GC the versions its pin still reaches."""
        from repro.core.deployment import (
            AFFINITY,
            ContainerSpec,
            DeploymentConfig,
        )

        # One container, two executors, both reactors pinned there —
        # the reader's remote sub-call to b releases a's executor, so
        # the post-promotion writer really commits inside its window.
        database = ReactorDatabase(
            DeploymentConfig(
                name="promo-pin", routing=AFFINITY,
                containers=[ContainerSpec(executors=2, mpl=2)],
                pin_reactors=True, cc_scheme="mvocc",
                replication=ReplicationConfig(
                    replicas_per_container=1, mode="async",
                    read_from_replicas=True, async_lag_us=1.0)),
            [("a", PAIR), ("b", PAIR)])
        database.load("a", "kv", [{"k": "a", "v": 1.0}])
        database.load("b", "kv", [{"k": "b", "v": 2.0}])
        outcomes: dict = {}
        # Read-only root routed to the replica; it reads a, blocks on
        # b's slow read, and re-reads a afterwards.
        _submit_collect(database, outcomes, "reader", "a",
                        "double_check", "b")
        database.scheduler.at(
            200.0, database.replication.kill_and_promote, 0)
        database.scheduler.at(
            250.0, _submit_collect, database, outcomes, "writer",
            "a", "set_v", 9.0)
        database.scheduler.run()
        assert database.replication.stats.reads_routed_to_replicas == 1
        assert outcomes["writer"][0]
        committed, __, result = outcomes["reader"]
        assert committed, outcomes["reader"]
        # Both reads of 'a' resolve at the pinned snapshot (1.0 each,
        # b contributes 2.0) — never 9.0 and never a missing row.
        assert result == pytest.approx(4.0)


class TestSnapshotIsolationCertificate:
    def _certified_db(self):
        database = _pair_db("mvocc")
        enable_durability(database)
        database.enable_snapshot_audit()
        outcomes = _overlap_reader_with_writer(database)
        assert outcomes["reader"][0]
        database.run("a", "get_v")
        return database

    def test_clean_run_certifies(self):
        database = self._certified_db()
        report = certify_snapshot_isolation(database)
        assert report["enabled"]
        assert report["ok"], report["violations"]
        assert report["log_checked"]  # durability anchored rule 2
        assert report["reads_checked"] >= 3
        assert report["roots_checked"] >= 2

    def test_missing_durability_is_disclosed_not_passed(self):
        """Regression: without a redo log the newest-at-snapshot check
        cannot run — the certificate must say so, not silently pass."""
        database = _pair_db("mvocc")
        database.enable_snapshot_audit()
        database.run("a", "get_v")
        report = certify_snapshot_isolation(database)
        assert report["enabled"]
        assert not report["log_checked"]

    def test_stale_read_tamper_rejected(self):
        database = self._certified_db()
        events = list(database.storage.audit)
        target = next(i for i, e in enumerate(events)
                      if e.observed_tid > 0)
        events[target] = dataclasses.replace(
            events[target],
            observed_tid=events[target].observed_tid - 1)
        report = certify_snapshot_isolation(database, events=events)
        assert not report["ok"]
        assert report["violations"][0]["kind"] == "stale-read"

    def test_future_read_tamper_rejected(self):
        database = self._certified_db()
        events = list(database.storage.audit)
        events[0] = dataclasses.replace(
            events[0], observed_tid=events[0].snapshot_tid + 1)
        report = certify_snapshot_isolation(database, events=events)
        assert not report["ok"]
        assert report["violations"][0]["kind"] == "future-read"

    def test_split_snapshot_tamper_rejected(self):
        database = self._certified_db()
        events = [e for e in database.storage.audit]
        same_root = [e for e in events
                     if e.txn_id == events[0].txn_id]
        if len(same_root) < 2:  # pragma: no cover - layout guard
            pytest.skip("need a multi-read root")
        idx = events.index(same_root[1])
        events[idx] = dataclasses.replace(
            events[idx], snapshot_tid=events[idx].snapshot_tid + 1)
        report = certify_snapshot_isolation(database, events=events)
        assert not report["ok"]
        assert any(v["kind"] == "split-snapshot"
                   for v in report["violations"])

    def test_disabled_audit_reports_disabled(self):
        database = _pair_db("mvocc")
        report = certify_snapshot_isolation(database)
        assert not report["enabled"]
        assert report["ok"]


class TestRecoveryAndMigration:
    def test_recovery_replays_into_the_versioned_engine(self):
        database = _pair_db("mvocc")
        durability = enable_durability(database)
        database.run("a", "set_both", "b", 5.0)
        checkpoint = take_checkpoint(database)
        database.run("a", "set_v", 6.0)

        recovered = recover(
            shared_nothing(2, cc_scheme="mvocc"),
            [("a", PAIR), ("b", PAIR)],
            checkpoint, durability.logs.values())
        enable_durability(recovered)
        recovered.enable_snapshot_audit()
        assert recovered.run("a", "get_v") == pytest.approx(6.0)
        assert recovered.run("b", "get_v") == pytest.approx(5.0)
        # Post-recovery writers install versions for snapshot readers.
        outcomes = _overlap_reader_with_writer(recovered)
        assert outcomes["reader"][0]
        assert outcomes["reader"][2] == pytest.approx(11.0)
        report = certify_snapshot_isolation(recovered)
        assert report["ok"], report["violations"]

    def test_pinned_reader_survives_a_mid_flight_migration(self):
        """Regression: a snapshot pinned before a migration must still
        resolve pre-watermark state on the successor — the copy ships
        the retained version history, not just the flat watermark cut."""
        database = _pair_db("mvocc")
        enable_durability(database)
        database.enable_snapshot_audit()
        outcomes: dict = {}
        # Reader on 'b' pins, stalls, then calls the migrating 'a'.
        _submit_collect(database, outcomes, "reader", "b",
                        "slow_sum", "a")
        database.scheduler.at(
            50.0, _submit_collect, database, outcomes, "writer",
            "a", "set_v", 9.0)
        database.scheduler.at(100.0, database.migrate, "a", 1)
        database.scheduler.run()
        assert outcomes["writer"][0]
        committed, __, result = outcomes["reader"]
        assert committed
        # The snapshot predates the writer AND the migration: the
        # successor must serve a=1.0, not 9.0 and not a missing row.
        assert result == pytest.approx(3.0)
        assert database.reactor("a").container.container_id == 1
        report = certify_snapshot_isolation(database)
        assert report["ok"], report["violations"]

    def test_snapshot_scan_keeps_hash_index_equality_contract(self):
        """Regression: snapshot scans refuse hash-index range scans
        exactly like validated sessions (scheme-independent errors)."""
        from repro.errors import QueryError
        from repro.relational import IndexSpec, int_col, make_schema
        from repro.relational.table import Table

        schema = make_schema(
            "t", [int_col("id"), int_col("grp")], ["id"],
            [IndexSpec("by_grp", ("grp",), ordered=False)])
        table = Table(schema)
        for i in range(4):
            table.load_row({"id": i, "grp": i % 2}, tid=1)
        session = SnapshotSession(1, 0, snapshot_tid=5)
        with pytest.raises(QueryError, match="equality only"):
            session.scan(table, index="by_grp", low=(0,), high=(1,))
        with pytest.raises(QueryError, match="equality only"):
            session.scan(table, index="by_grp")
        result = session.scan(table, index="by_grp", low=(1,),
                              high=(1,))
        assert [r["id"] for r in result.rows] == [1, 3]

    def test_indexed_snapshot_scan_examines_candidates_not_table(self):
        """Regression: indexed snapshot scans examine index candidates
        plus the chained set — not the whole table — while rows
        re-keyed or deleted after the snapshot still resolve."""
        from repro.relational import IndexSpec, int_col, make_schema
        from repro.relational.table import Table
        from repro.storage import StorageCoordinator

        schema = make_schema(
            "t", [int_col("id"), int_col("v")], ["id"],
            [IndexSpec("by_v", ("v",), ordered=True)])
        table = Table(schema)
        coordinator = StorageCoordinator()
        table.versioning = coordinator
        for i in range(100):
            table.load_row({"id": i, "v": i}, tid=1)
        coordinator.pin(1, 1)
        # After the pin: one row re-keyed out of the range, one
        # deleted — both must still appear to the snapshot.
        table.install_update(table.get_record((5,)),
                             {"id": 5, "v": 500}, 10)
        table.install_delete(table.get_record((6,)), 11)
        session = SnapshotSession(1, 0, snapshot_tid=1)
        result = session.scan(table, index="by_v", low=(3,), high=(8,))
        assert [r["id"] for r in result.rows] == [3, 4, 5, 6, 7, 8]
        assert result.examined <= 10  # candidates + chains, not 100

    def test_unindexed_equality_select_uses_hash_probe(self):
        """Regression: an equality-predicate scan with no explicit
        index takes the hash-index fast path like validated sessions —
        not a full-table walk."""
        from repro.relational import IndexSpec, int_col, make_schema
        from repro.relational.predicate import col
        from repro.relational.table import Table

        schema = make_schema(
            "t", [int_col("id"), int_col("grp")], ["id"],
            [IndexSpec("by_grp", ("grp",), ordered=False)])
        table = Table(schema)
        for i in range(100):
            table.load_row({"id": i, "grp": i % 10}, tid=1)
        session = SnapshotSession(1, 0, snapshot_tid=5)
        result = session.scan(table, col("grp") == 3)
        assert [r["id"] for r in result.rows] == list(range(3, 100, 10))
        assert result.examined <= 12  # probe + chains, not 100

    def test_migrated_in_replica_seeds_carry_the_watermark(self):
        """Regression: re-homed replica shadows are seeded at the
        migration watermark, not tid 0 — a replica snapshot pinned
        below the watermark must not see migrated-in future state."""
        database = _pair_db(
            "mvocc",
            replication=ReplicationConfig(
                replicas_per_container=1, mode="async",
                read_from_replicas=True))
        database.run("a", "set_v", 9.0)
        migration = database.migrate("a", 1)
        database.scheduler.run()
        assert migration.done
        replica = database.replication.replicas[1][0]
        shadow = replica.shadow("a")
        record = shadow.table("kv").get_record(("a",))
        assert record.tid == migration.watermark > 0
        # Below the watermark the migrated-in row is invisible.
        assert record.visible_at(migration.watermark - 1) is None
        # Fresh replica-routed reads pin at the seed floor (the
        # replica's materialized position) and see the row.
        assert replica.snapshot_floor == migration.watermark
        assert database.run("a", "get_v") == pytest.approx(9.0)

    def test_migration_copies_a_consistent_cut_and_reads_certify(self):
        database = _pair_db("mvocc")
        enable_durability(database)
        database.enable_snapshot_audit()
        database.run("a", "set_v", 9.0)
        database.migrate("a", 1)
        database.scheduler.run()
        assert database.reactor("a").container.container_id == 1
        assert certify_migration(database)["ok"]
        # Snapshot reads over the migrated (watermark-restamped)
        # reactor still certify.
        assert database.run("a", "get_v") == pytest.approx(9.0)
        report = certify_snapshot_isolation(database)
        assert report["ok"], report["violations"]
