"""Property-based verification of Theorem 2.7 and model invariants.

Random reactor-model histories are generated with hypothesis; for
every one of them, serializability under the reactor model's
sub-transaction conflict notion must coincide with classic
serializability of the projected history — the equivalence the paper
proves (Section 2.3, Appendix A).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formal import (
    commit,
    abort,
    history_of,
    is_serializable_classic,
    is_serializable_reactor,
    project,
    read,
    write,
)

N_TXNS = 4
N_REACTORS = 3
ITEMS = ("x", "y")


@st.composite
def reactor_histories(draw):
    """A random totally ordered reactor-model history.

    Each transaction owns a handful of sub-transactions; each
    sub-transaction is bound to one reactor; operations from all
    transactions interleave arbitrarily; a suffix of commit/abort
    events terminates every transaction.
    """
    n_txns = draw(st.integers(min_value=1, max_value=N_TXNS))
    events = []
    for txn in range(1, n_txns + 1):
        n_subs = draw(st.integers(min_value=1, max_value=3))
        for sub in range(1, n_subs + 1):
            reactor = draw(st.integers(min_value=0,
                                       max_value=N_REACTORS - 1))
            n_ops = draw(st.integers(min_value=1, max_value=3))
            for __ in range(n_ops):
                item = draw(st.sampled_from(ITEMS))
                if draw(st.booleans()):
                    events.append(write(txn, sub, reactor, item))
                else:
                    events.append(read(txn, sub, reactor, item))
    order = draw(st.permutations(events))
    history = list(order)
    for txn in range(1, n_txns + 1):
        if draw(st.booleans()):
            history.append(commit(txn))
        else:
            history.append(abort(txn))
    return history_of(history)


@settings(max_examples=200, deadline=None)
@given(reactor_histories())
def test_theorem_2_7(history):
    """Reactor-model serializability iff classic serializability of
    the projection (Theorem 2.7)."""
    assert is_serializable_reactor(history) == \
        is_serializable_classic(project(history))


@settings(max_examples=100, deadline=None)
@given(reactor_histories())
def test_subtxn_edges_superset_relationship(history):
    """Sub-transaction-level conflict edges and leaf-level edges agree
    when projected to transactions (both order the same conflicting
    basic-operation pairs)."""
    assert history.subtxn_conflict_edges() == \
        history.leaf_conflict_edges()


@settings(max_examples=100, deadline=None)
@given(reactor_histories())
def test_aborted_transactions_never_appear_in_graph(history):
    committed = history.committed_txns()
    for src, dst in history.subtxn_conflict_edges():
        assert src in committed
        assert dst in committed


@settings(max_examples=100, deadline=None)
@given(reactor_histories())
def test_projection_preserves_committed_set(history):
    assert project(history).committed_txns() >= \
        history.committed_txns()


@settings(max_examples=50, deadline=None)
@given(reactor_histories())
def test_serial_prefix_of_single_txn_always_serializable(history):
    """A history containing a single committed transaction is always
    serializable, whatever the interleaving with aborted ones."""
    committed = history.committed_txns()
    if len(committed) <= 1:
        assert is_serializable_reactor(history)
