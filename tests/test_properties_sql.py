"""Property-based tests for the SQL dialect.

Random predicate trees are rendered to SQL text, parsed back, and
checked to match exactly the same rows as the original predicate —
a semantic round-trip through the tokenizer/parser/compiler.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational.predicate import (
    Between,
    Comparison,
    InSet,
    Not,
    Or,
    Predicate,
)
from repro.relational.sql import SelectStatement, parse

COLUMNS = ("a", "b", "c")
VALUES = st.one_of(
    st.integers(min_value=-50, max_value=50),
    st.text(alphabet="xyz", min_size=0, max_size=3),
)


def _sql_literal(value) -> str:
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    return str(value)


def _render(predicate: Predicate) -> str:
    if isinstance(predicate, Comparison):
        op = {"==": "=", "!=": "<>"}.get(predicate.op, predicate.op)
        return f"{predicate.column} {op} " \
            f"{_sql_literal(predicate.value)}"
    if isinstance(predicate, Between):
        return (f"{predicate.column} BETWEEN "
                f"{_sql_literal(predicate.low)} AND "
                f"{_sql_literal(predicate.high)}")
    if isinstance(predicate, InSet):
        values = ", ".join(_sql_literal(v)
                           for v in sorted(predicate.values, key=repr))
        return f"{predicate.column} IN ({values})"
    if isinstance(predicate, Not):
        return f"NOT ({_render(predicate.inner)})"
    if isinstance(predicate, Or):
        return "(" + " OR ".join(_render(p)
                                 for p in predicate.parts) + ")"
    # And
    return "(" + " AND ".join(_render(p)
                              for p in predicate.parts) + ")"


@st.composite
def predicates(draw, depth=2) -> Predicate:
    if depth == 0 or draw(st.booleans()):
        column = draw(st.sampled_from(COLUMNS))
        kind = draw(st.sampled_from(["cmp", "between", "in"]))
        if kind == "cmp":
            op = draw(st.sampled_from(
                ["==", "!=", "<", "<=", ">", ">="]))
            value = draw(st.integers(-50, 50))
            return Comparison(column, op, value)
        if kind == "between":
            low = draw(st.integers(-50, 0))
            high = draw(st.integers(0, 50))
            return Between(column, low, high)
        values = draw(st.lists(st.integers(-50, 50), min_size=1,
                               max_size=3))
        return InSet(column, values)
    combo = draw(st.sampled_from(["and", "or", "not"]))
    if combo == "not":
        return Not(draw(predicates(depth=depth - 1)))
    left = draw(predicates(depth=depth - 1))
    right = draw(predicates(depth=depth - 1))
    if combo == "and":
        return left & right
    return Or(left, right)


rows = st.lists(
    st.fixed_dictionaries({
        "a": st.integers(-50, 50),
        "b": st.integers(-50, 50),
        "c": st.integers(-50, 50),
    }),
    max_size=10,
)


@settings(max_examples=150, deadline=None)
@given(predicates(), rows)
def test_sql_where_semantic_round_trip(predicate, data):
    text = f"SELECT * FROM t WHERE {_render(predicate)}"
    statement = parse(text)
    assert isinstance(statement, SelectStatement)
    for row in data:
        assert statement.where.matches(row) == \
            predicate.matches(row), (text, row)


@settings(max_examples=100, deadline=None)
@given(predicates())
def test_parse_is_deterministic(predicate):
    text = f"SELECT a FROM t WHERE {_render(predicate)}"
    first = parse(text)
    second = parse(text)
    assert repr(first.where) == repr(second.where)
