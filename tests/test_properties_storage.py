"""Property-based tests on the storage substrate and OCC engine.

Invariants checked on randomized inputs:

* ordered-index range scans agree with a naive filter over the rows;
* tables and their secondary indexes stay mutually consistent through
  arbitrary insert/update/delete interleavings;
* randomly interleaved OCC sessions either abort or produce a final
  state equal to some serial execution (serializability), and
  committed effects are exactly the write sets of committed sessions.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.concurrency.coordinator import TwoPhaseCommit
from repro.concurrency.occ import ConcurrencyManager
from repro.concurrency.tid import EpochManager
from repro.relational.index import OrderedIndex, make_spec
from repro.relational.schema import (
    IndexSpec,
    int_col,
    make_schema,
)
from repro.relational.table import Table

keys = st.tuples(st.integers(0, 5), st.integers(0, 5))


@settings(max_examples=100, deadline=None)
@given(st.lists(keys, max_size=40),
       st.tuples(st.integers(0, 5)) | st.none(),
       st.tuples(st.integers(0, 5)) | st.none())
def test_ordered_index_range_matches_naive_filter(entries, low, high):
    index = OrderedIndex(make_spec("i", ["a", "b"], ordered=True))
    seen = set()
    for key in entries:
        if key not in seen:
            seen.add(key)
            index.insert(key, key)
    got = list(index.range(low, high))
    expected = sorted(
        k for k in seen
        if (low is None or k[: len(low)] >= low)
        and (high is None or k[: len(high)] <= high))
    assert got == expected


def _indexed_table() -> Table:
    schema = make_schema(
        "t", [int_col("id"), int_col("grp"), int_col("v")], ["id"],
        [IndexSpec("by_grp", ("grp",)),
         IndexSpec("by_v", ("v",), ordered=True)])
    return Table(schema)


ops = st.lists(
    st.tuples(st.sampled_from(["insert", "update", "delete"]),
              st.integers(0, 9),   # id
              st.integers(0, 3),   # grp
              st.integers(0, 9)),  # v
    max_size=60)


@settings(max_examples=100, deadline=None)
@given(ops)
def test_table_and_indexes_stay_consistent(operations):
    table = _indexed_table()
    shadow: dict[tuple, dict] = {}
    tid = 0
    for op, id_, grp, v in operations:
        tid += 1
        pk = (id_,)
        row = {"id": id_, "grp": grp, "v": v}
        if op == "insert":
            if pk in shadow:
                continue
            table.install_insert(row, tid)
            shadow[pk] = row
        elif op == "update":
            record = table.get_record(pk)
            if record is None:
                continue
            table.install_update(record, row, tid)
            shadow[pk] = row
        else:
            record = table.get_record(pk)
            if record is None:
                continue
            table.install_delete(record, tid)
            del shadow[pk]

    assert {r.key for r in table.iter_records()} == set(shadow)
    by_grp = table.index("by_grp")
    for grp in range(4):
        expected = {pk for pk, row in shadow.items()
                    if row["grp"] == grp}
        assert by_grp.lookup((grp,)) == expected
    by_v = table.index("by_v")
    expected_order = sorted(shadow, key=lambda pk: (shadow[pk]["v"],
                                                    pk))
    assert list(by_v.range(None, None)) == expected_order


# Random concurrent OCC schedules -------------------------------------

txn_programs = st.lists(
    st.lists(
        st.tuples(st.sampled_from(["read", "write"]),
                  st.integers(0, 4)),
        min_size=1, max_size=4),
    min_size=2, max_size=4)


@settings(max_examples=80, deadline=None)
@given(txn_programs, st.randoms(use_true_random=False))
def test_occ_interleavings_are_serializable(programs, rng):
    """Execute sessions with interleaved operations; committed result
    must equal serial execution of the committed subset in commit
    order. Writes are modeled as register assignments of the writing
    transaction's label so final states identify writers."""
    schema = make_schema("t", [int_col("id"), int_col("v")], ["id"])
    table = Table(schema)
    for i in range(5):
        table.load_row({"id": i, "v": -1})
    manager = ConcurrencyManager(0, EpochManager())

    sessions = [manager.begin_session(i + 1)
                for i in range(len(programs))]
    # Build one global random interleaving of all ops.
    schedule = [(t, op) for t, program in enumerate(programs)
                for op in program]
    rng.shuffle(schedule)
    for t, (kind, key) in schedule:
        session = sessions[t]
        if session.finished:
            continue
        if kind == "read":
            session.read(table, (key,))
        else:
            session.update(table, (key,), {"v": t})

    committed: list[tuple[int, int]] = []  # (commit tid, txn index)
    for t, session in enumerate(sessions):
        if session.finished:
            continue
        outcome = TwoPhaseCommit([(manager, session)]).commit(
            float(t + 1))
        if outcome.committed:
            committed.append((outcome.commit_tid, t))
    committed.sort()

    final = {r.key[0]: r.value["v"] for r in table.iter_records()}

    # Serial replay of committed transactions in commit order.
    replay_table = Table(schema)
    for i in range(5):
        replay_table.load_row({"id": i, "v": -1})
    replay_manager = ConcurrencyManager(0, EpochManager())
    for order, (__, t) in enumerate(committed):
        session = replay_manager.begin_session(t + 1)
        for kind, key in programs[t]:
            if kind == "read":
                session.read(replay_table, (key,))
            else:
                session.update(replay_table, (key,), {"v": t})
        outcome = TwoPhaseCommit(
            [(replay_manager, session)]).commit(float(order + 1))
        assert outcome.committed  # serial execution cannot conflict

    replay_final = {r.key[0]: r.value["v"]
                    for r in replay_table.iter_records()}
    assert final == replay_final


@settings(max_examples=50, deadline=None)
@given(txn_programs)
def test_serial_occ_never_aborts(programs):
    """Sessions executed and committed one after another always pass
    validation (no false conflicts in the serial case)."""
    schema = make_schema("t", [int_col("id"), int_col("v")], ["id"])
    table = Table(schema)
    for i in range(5):
        table.load_row({"id": i, "v": 0})
    manager = ConcurrencyManager(0, EpochManager())
    for t, program in enumerate(programs):
        session = manager.begin_session(t + 1)
        for kind, key in program:
            if kind == "read":
                session.read(table, (key,))
            else:
                session.update(table, (key,), {"v": t})
        outcome = TwoPhaseCommit([(manager, session)]).commit(
            float(t + 1))
        assert outcome.committed
