"""Index structures and versioned table tests."""

import pytest

from repro.errors import DuplicateKeyError, SchemaError
from repro.relational.index import HashIndex, OrderedIndex, make_spec
from repro.relational.schema import (
    IndexSpec,
    float_col,
    int_col,
    make_schema,
    str_col,
)
from repro.relational.table import Table


def order_schema():
    return make_schema(
        "orders",
        [int_col("d_id"), int_col("o_id"), str_col("status"),
         float_col("amount")],
        ["d_id", "o_id"],
        [IndexSpec("by_status", ("status",)),
         IndexSpec("by_d", ("d_id", "o_id"), ordered=True)],
    )


class TestHashIndex:
    def test_insert_lookup_remove(self):
        index = HashIndex(make_spec("i", ["a"]))
        index.insert(("x",), (1,))
        index.insert(("x",), (2,))
        assert index.lookup(("x",)) == {(1,), (2,)}
        index.remove(("x",), (1,))
        assert index.lookup(("x",)) == {(2,)}
        assert index.lookup(("missing",)) == frozenset()

    def test_unique_violation(self):
        index = HashIndex(make_spec("i", ["a"], unique=True))
        index.insert(("x",), (1,))
        with pytest.raises(DuplicateKeyError):
            index.insert(("x",), (2,))

    def test_structure_version_bumps(self):
        index = HashIndex(make_spec("i", ["a"]))
        v0 = index.structure_version
        index.insert(("x",), (1,))
        assert index.structure_version > v0

    def test_len(self):
        index = HashIndex(make_spec("i", ["a"]))
        index.insert(("x",), (1,))
        index.insert(("y",), (2,))
        assert len(index) == 2


class TestOrderedIndex:
    def _populated(self):
        index = OrderedIndex(make_spec("i", ["d", "o"], ordered=True))
        for d in (1, 2):
            for o in range(5):
                index.insert((d, o), (d, o))
        return index

    def test_full_range(self):
        index = self._populated()
        assert len(list(index.range(None, None))) == 10

    def test_prefix_range(self):
        index = self._populated()
        pks = list(index.range((1,), (1,)))
        assert pks == [(1, o) for o in range(5)]

    def test_bounded_range_inclusive(self):
        index = self._populated()
        pks = list(index.range((1, 1), (1, 3)))
        assert pks == [(1, 1), (1, 2), (1, 3)]

    def test_reverse_range(self):
        index = self._populated()
        pks = list(index.range((2,), (2,), reverse=True))
        assert pks[0] == (2, 4)

    def test_open_low_bound(self):
        index = self._populated()
        pks = list(index.range(None, (1, 1)))
        assert pks == [(1, 0), (1, 1)]

    def test_remove(self):
        index = self._populated()
        index.remove((1, 2), (1, 2))
        assert (1, 2) not in list(index.range((1,), (1,)))

    def test_lookup_exact(self):
        index = self._populated()
        assert index.lookup((1, 3)) == {(1, 3)}

    def test_unique_violation(self):
        index = OrderedIndex(make_spec("i", ["a"], ordered=True,
                                       unique=True))
        index.insert((1,), (1,))
        with pytest.raises(DuplicateKeyError):
            index.insert((1,), (2,))


class TestTable:
    def test_insert_and_get(self):
        table = Table(order_schema())
        record = table.install_insert(
            {"d_id": 1, "o_id": 1, "status": "new", "amount": 5.0},
            tid=1)
        assert table.get_record((1, 1)) is record
        assert len(table) == 1

    def test_duplicate_insert_rejected(self):
        table = Table(order_schema())
        row = {"d_id": 1, "o_id": 1, "status": "new", "amount": 5.0}
        table.install_insert(row, tid=1)
        with pytest.raises(DuplicateKeyError):
            table.install_insert(row, tid=2)

    def test_update_maintains_indexes(self):
        table = Table(order_schema())
        record = table.install_insert(
            {"d_id": 1, "o_id": 1, "status": "new", "amount": 5.0},
            tid=1)
        table.install_update(record, dict(record.value, status="done"),
                             tid=2)
        assert table.index("by_status").lookup(("new",)) == frozenset()
        assert table.index("by_status").lookup(("done",)) == {(1, 1)}
        assert record.tid == 2

    def test_delete_tombstones(self):
        table = Table(order_schema())
        record = table.install_insert(
            {"d_id": 1, "o_id": 1, "status": "new", "amount": 5.0},
            tid=1)
        table.install_delete(record, tid=2)
        assert table.get_record((1, 1)) is None
        assert record.deleted
        assert table.index("by_status").lookup(("new",)) == frozenset()

    def test_insert_revives_tombstone(self):
        table = Table(order_schema())
        record = table.install_insert(
            {"d_id": 1, "o_id": 1, "status": "new", "amount": 5.0},
            tid=1)
        table.install_delete(record, tid=2)
        revived = table.install_insert(
            {"d_id": 1, "o_id": 1, "status": "back", "amount": 1.0},
            tid=3)
        assert revived is record
        assert table.get_record((1, 1)).value["status"] == "back"

    def test_structure_version_on_insert_delete_not_update(self):
        table = Table(order_schema())
        v0 = table.structure_version
        record = table.install_insert(
            {"d_id": 1, "o_id": 1, "status": "new", "amount": 5.0},
            tid=1)
        v1 = table.structure_version
        assert v1 > v0
        table.install_update(record, dict(record.value, amount=1.0),
                             tid=2)
        assert table.structure_version == v1
        table.install_delete(record, tid=3)
        assert table.structure_version > v1

    def test_iter_records_sorted_and_live_only(self):
        table = Table(order_schema())
        for o in (3, 1, 2):
            table.install_insert(
                {"d_id": 1, "o_id": o, "status": "new", "amount": 0.0},
                tid=1)
        record = table.get_record((1, 2))
        table.install_delete(record, tid=2)
        keys = [r.key for r in table.iter_records()]
        assert keys == [(1, 1), (1, 3)]

    def test_schema_validation_on_insert(self):
        table = Table(order_schema())
        with pytest.raises(SchemaError):
            table.install_insert({"d_id": 1, "o_id": 1,
                                  "status": 7, "amount": 0.0}, tid=1)

    def test_placeholder_is_invisible_and_lockable(self):
        table = Table(order_schema())
        placeholder = table.ensure_placeholder((9, 9))
        assert table.get_record((9, 9)) is None
        assert placeholder.lock(42)
        assert not placeholder.lock(43)
        assert table.ensure_placeholder((9, 9)) is placeholder

    def test_rows_snapshot(self):
        table = Table(order_schema())
        table.install_insert(
            {"d_id": 1, "o_id": 1, "status": "new", "amount": 5.0},
            tid=1)
        rows = table.rows()
        rows[0]["amount"] = 999.0
        assert table.get_record((1, 1)).value["amount"] == 5.0
