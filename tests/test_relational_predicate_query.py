"""Predicate expression and query pipeline tests."""

import pytest

from repro.errors import QueryError
from repro.relational.predicate import ALWAYS, Lambda, col
from repro.relational.query import (
    Query,
    agg_avg,
    agg_count,
    agg_count_distinct,
    agg_max,
    agg_min,
    agg_sum,
    scalar,
)

ROWS = [
    {"provider": "visa", "value": 10.0, "settled": "N"},
    {"provider": "visa", "value": 20.0, "settled": "Y"},
    {"provider": "mc", "value": 5.0, "settled": "N"},
    {"provider": "mc", "value": 7.0, "settled": "N"},
]


class TestPredicates:
    def test_comparisons(self):
        assert (col("value") > 9.0).matches(ROWS[0])
        assert not (col("value") > 10.0).matches(ROWS[0])
        assert (col("value") >= 10.0).matches(ROWS[0])
        assert (col("value") < 11.0).matches(ROWS[0])
        assert (col("value") <= 10.0).matches(ROWS[0])
        assert (col("settled") != "Y").matches(ROWS[0])

    def test_and_or_not(self):
        pred = (col("provider") == "visa") & (col("settled") == "N")
        assert pred.matches(ROWS[0])
        assert not pred.matches(ROWS[1])
        either = (col("provider") == "visa") | (col("value") < 6.0)
        assert either.matches(ROWS[2])
        assert not (~(col("provider") == "visa")).matches(ROWS[0])

    def test_between(self):
        assert col("value").between(5.0, 10.0).matches(ROWS[0])
        assert not col("value").between(11.0, 30.0).matches(ROWS[0])

    def test_in(self):
        assert col("provider").in_(["visa", "amex"]).matches(ROWS[0])
        assert not col("provider").in_(["amex"]).matches(ROWS[0])

    def test_missing_column_never_matches(self):
        assert not (col("missing") == 1).matches(ROWS[0])

    def test_equality_bindings_surface_through_and(self):
        pred = (col("a") == 1) & (col("b") == 2) & (col("c") > 3)
        assert pred.equality_bindings() == {"a": 1, "b": 2}

    def test_columns_collected(self):
        pred = (col("a") == 1) | (col("b") == 2)
        assert pred.columns() == {"a", "b"}

    def test_always(self):
        assert ALWAYS.matches({})

    def test_lambda(self):
        pred = Lambda(lambda r: r["value"] > 6, columns={"value"})
        assert pred.matches(ROWS[0])
        assert not pred.matches(ROWS[2])
        assert pred.columns() == {"value"}


class TestQueryPipeline:
    def test_filter(self):
        out = Query().where(col("settled") == "N").run(ROWS)
        assert len(out) == 3

    def test_where_composes_conjunctively(self):
        q = Query().where(col("settled") == "N") \
            .where(col("provider") == "mc")
        assert len(q.run(ROWS)) == 2

    def test_projection(self):
        out = Query().project("provider").run(ROWS)
        assert out[0] == {"provider": "visa"}

    def test_projection_missing_column(self):
        with pytest.raises(QueryError):
            Query().project("nope").run(ROWS)

    def test_order_by(self):
        out = Query().order_by("value").run(ROWS)
        assert [r["value"] for r in out] == [5.0, 7.0, 10.0, 20.0]

    def test_order_by_descending(self):
        out = Query().order_by("value", descending=True).run(ROWS)
        assert out[0]["value"] == 20.0

    def test_limit(self):
        assert len(Query().limit(2).run(ROWS)) == 2
        with pytest.raises(QueryError):
            Query().limit(-1)

    def test_global_aggregates(self):
        out = Query().aggregate(
            total=agg_sum("value"), n=agg_count(),
            low=agg_min("value"), high=agg_max("value"),
            mean=agg_avg("value"))
        result = out.run(ROWS)[0]
        assert result["total"] == 42.0
        assert result["n"] == 4
        assert result["low"] == 5.0
        assert result["high"] == 20.0
        assert result["mean"] == pytest.approx(10.5)

    def test_group_by(self):
        out = Query().group_by("provider").aggregate(
            total=agg_sum("value")).run(ROWS)
        by_provider = {r["provider"]: r["total"] for r in out}
        assert by_provider == {"visa": 30.0, "mc": 12.0}

    def test_group_by_without_aggregate_rejected(self):
        with pytest.raises(QueryError):
            Query().group_by("provider").run(ROWS)

    def test_count_distinct(self):
        out = Query().aggregate(
            n=agg_count_distinct("provider")).run(ROWS)
        assert out[0]["n"] == 2

    def test_empty_input_aggregates(self):
        out = Query().aggregate(total=agg_sum("value"),
                                n=agg_count(), low=agg_min("value"))
        result = out.run([])[0]
        assert result["total"] == 0
        assert result["n"] == 0
        assert result["low"] is None

    def test_scalar_helper(self):
        assert scalar(ROWS, "value") == 10.0
        assert scalar([], "value", default=-1) == -1
