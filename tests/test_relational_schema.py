"""Schema definition and row validation tests."""

import pytest

from repro.errors import SchemaError
from repro.relational.schema import (
    ColumnType,
    IndexSpec,
    float_col,
    int_col,
    make_schema,
    str_col,
    bool_col,
    column,
)


def sample_schema(**kwargs):
    return make_schema(
        "accounts",
        [int_col("id"), str_col("name"), float_col("balance"),
         bool_col("active", nullable=True)],
        ["id"],
        **kwargs,
    )


class TestColumnTypes:
    def test_int_accepts_int_only(self):
        assert ColumnType.INT.accepts(5)
        assert not ColumnType.INT.accepts(5.0)
        assert not ColumnType.INT.accepts(True)  # bool is not an int

    def test_float_accepts_int_and_float(self):
        assert ColumnType.FLOAT.accepts(5)
        assert ColumnType.FLOAT.accepts(5.5)
        assert not ColumnType.FLOAT.accepts("5")

    def test_str(self):
        assert ColumnType.STR.accepts("x")
        assert not ColumnType.STR.accepts(5)

    def test_bool(self):
        assert ColumnType.BOOL.accepts(True)
        assert not ColumnType.BOOL.accepts(1)

    def test_none_is_handled_by_nullability(self):
        assert ColumnType.INT.accepts(None)

    def test_column_from_string_type(self):
        col = column("x", "int")
        assert col.type is ColumnType.INT


class TestSchemaDefinition:
    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            make_schema("t", [int_col("a"), int_col("a")], ["a"])

    def test_primary_key_required(self):
        with pytest.raises(SchemaError):
            make_schema("t", [int_col("a")], [])

    def test_primary_key_must_exist(self):
        with pytest.raises(SchemaError):
            make_schema("t", [int_col("a")], ["b"])

    def test_index_column_must_exist(self):
        with pytest.raises(SchemaError):
            sample_schema(indexes=[IndexSpec("bad", ("missing",))])

    def test_duplicate_index_names_rejected(self):
        with pytest.raises(SchemaError):
            sample_schema(indexes=[IndexSpec("i", ("name",)),
                                   IndexSpec("i", ("balance",))])

    def test_column_lookup(self):
        schema = sample_schema()
        assert schema.column("name").type is ColumnType.STR
        with pytest.raises(SchemaError):
            schema.column("missing")

    def test_column_names(self):
        assert sample_schema().column_names == (
            "id", "name", "balance", "active")


class TestRowValidation:
    def test_valid_row_normalized(self):
        schema = sample_schema()
        row = schema.validate_row(
            {"id": 1, "name": "a", "balance": 2.0})
        assert row == {"id": 1, "name": "a", "balance": 2.0,
                       "active": None}

    def test_missing_non_nullable_rejected(self):
        schema = sample_schema()
        with pytest.raises(SchemaError):
            schema.validate_row({"id": 1, "name": "a"})

    def test_wrong_type_rejected(self):
        schema = sample_schema()
        with pytest.raises(SchemaError):
            schema.validate_row(
                {"id": "one", "name": "a", "balance": 2.0})

    def test_unknown_column_rejected(self):
        schema = sample_schema()
        with pytest.raises(SchemaError):
            schema.validate_row({"id": 1, "name": "a", "balance": 2.0,
                                 "extra": 1})

    def test_primary_key_extraction(self):
        schema = sample_schema()
        assert schema.primary_key_of(
            {"id": 9, "name": "x", "balance": 0.0}) == (9,)

    def test_primary_key_missing(self):
        schema = sample_schema()
        with pytest.raises(SchemaError):
            schema.primary_key_of({"name": "x"})

    def test_assignments_validated(self):
        schema = sample_schema()
        schema.validate_assignments({"balance": 3.0})
        with pytest.raises(SchemaError):
            schema.validate_assignments({"balance": "lots"})

    def test_primary_key_update_rejected(self):
        schema = sample_schema()
        with pytest.raises(SchemaError):
            schema.validate_assignments({"id": 2})
