"""SQL dialect tests: tokenizer, parser, and end-to-end execution
through a reactor context."""

import pytest

from repro.core.database import ReactorDatabase
from repro.core.deployment import shared_nothing
from repro.core.reactor import ReactorType
from repro.errors import SQLParseError
from repro.relational import float_col, int_col, make_schema, str_col
from repro.relational.sql import (
    DeleteStatement,
    InsertStatement,
    SelectStatement,
    UpdateStatement,
    parse,
    tokenize,
)


class TestTokenizer:
    def test_numbers(self):
        tokens = tokenize("42 -7 3.5 -2.25")
        assert [t.value for t in tokens] == [42, -7, 3.5, -2.25]

    def test_strings_with_escapes(self):
        tokens = tokenize("'hello' 'it''s'")
        assert [t.value for t in tokens] == ["hello", "it's"]

    def test_keywords_case_insensitive(self):
        tokens = tokenize("select FROM WhErE")
        assert [t.value for t in tokens] == ["SELECT", "FROM", "WHERE"]

    def test_names_preserve_case(self):
        tokens = tokenize("myTable")
        assert tokens[0].kind == "name"
        assert tokens[0].value == "myTable"

    def test_operators(self):
        tokens = tokenize("= <> <= >= < > !=")
        assert [t.value for t in tokens] == \
            ["=", "<>", "<=", ">=", "<", ">", "!="]

    def test_garbage_rejected(self):
        with pytest.raises(SQLParseError):
            tokenize("SELECT @ FROM t")


class TestParser:
    def test_simple_select(self):
        statement = parse("SELECT a, b FROM t")
        assert isinstance(statement, SelectStatement)
        assert statement.table == "t"
        assert statement.columns == ["a", "b"]

    def test_select_star(self):
        assert parse("SELECT * FROM t").columns is None

    def test_where_precedence_and_over_or(self):
        statement = parse(
            "SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3")
        assert statement.where.matches({"a": 1, "b": 0, "c": 0})
        assert statement.where.matches({"a": 0, "b": 2, "c": 3})
        assert not statement.where.matches({"a": 0, "b": 2, "c": 0})

    def test_parentheses(self):
        statement = parse(
            "SELECT * FROM t WHERE (a = 1 OR b = 2) AND c = 3")
        assert not statement.where.matches({"a": 1, "b": 0, "c": 0})
        assert statement.where.matches({"a": 1, "b": 0, "c": 3})

    def test_not(self):
        statement = parse("SELECT * FROM t WHERE NOT a = 1")
        assert statement.where.matches({"a": 2})

    def test_between_and_in(self):
        statement = parse(
            "SELECT * FROM t WHERE a BETWEEN 1 AND 5 AND b IN "
            "('x', 'y')")
        assert statement.where.matches({"a": 3, "b": "x"})
        assert not statement.where.matches({"a": 6, "b": "x"})

    def test_placeholders_bind_positionally(self):
        statement = parse("SELECT * FROM t WHERE a = ? AND b > ?",
                          params=(5, 2.5))
        assert statement.where.matches({"a": 5, "b": 3.0})

    def test_placeholder_count_mismatch(self):
        with pytest.raises(SQLParseError):
            parse("SELECT * FROM t WHERE a = ?", params=())
        with pytest.raises(SQLParseError):
            parse("SELECT * FROM t WHERE a = ?", params=(1, 2))

    def test_aggregates(self):
        statement = parse(
            "SELECT SUM(v) AS total, COUNT(*) AS n, "
            "COUNT(DISTINCT g) AS k FROM t GROUP BY g")
        assert set(statement.aggregates) == {"total", "n", "k"}
        assert statement.group_by == ["g"]

    def test_order_by_and_limit(self):
        statement = parse(
            "SELECT * FROM t ORDER BY a DESC, b LIMIT 3")
        assert statement.order_by == [("a", True), ("b", False)]
        assert statement.limit == 3

    def test_insert(self):
        statement = parse(
            "INSERT INTO t (a, b) VALUES (1, 'x')")
        assert isinstance(statement, InsertStatement)
        assert statement.columns == ["a", "b"]
        assert statement.values == [1, "x"]

    def test_insert_arity_mismatch(self):
        with pytest.raises(SQLParseError):
            parse("INSERT INTO t (a, b) VALUES (1)")

    def test_update(self):
        statement = parse("UPDATE t SET a = 1, b = ? WHERE c = 2",
                          params=("z",))
        assert isinstance(statement, UpdateStatement)
        assert statement.assignments == {"a": 1, "b": "z"}

    def test_delete(self):
        statement = parse("DELETE FROM t WHERE a <> 1")
        assert isinstance(statement, DeleteStatement)
        assert statement.where.matches({"a": 2})

    def test_null_true_false_literals(self):
        statement = parse("UPDATE t SET a = NULL, b = TRUE, c = FALSE")
        assert statement.assignments == {"a": None, "b": True,
                                         "c": False}

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SQLParseError):
            parse("SELECT * FROM t banana")

    def test_truncated_statement_rejected(self):
        with pytest.raises(SQLParseError):
            parse("SELECT a FROM")

    def test_templates_cached_and_immutable(self):
        from repro.relational.sql import parse_template

        parse_template.cache_clear()
        first = parse("SELECT * FROM t WHERE a = ?", params=(1,))
        second = parse("SELECT * FROM t WHERE a = ?", params=(2,))
        info = parse_template.cache_info()
        assert info.misses == 1
        assert info.hits == 1
        # Each bind produced an independent statement.
        assert first.where.matches({"a": 1})
        assert second.where.matches({"a": 2})
        assert not second.where.matches({"a": 1})


ORDERS = ReactorType("SqlOrders", lambda: [
    make_schema("orders", [
        int_col("id"), str_col("provider"), float_col("value"),
        str_col("settled"),
    ], ["id"]),
])


@ORDERS.procedure
def run_sql(ctx, text, *params):
    return ctx.sql(text, *params)


@pytest.fixture
def sql_db():
    database = ReactorDatabase(shared_nothing(1), [("r", ORDERS)])
    database.load("r", "orders", [
        {"id": 1, "provider": "visa", "value": 10.0, "settled": "N"},
        {"id": 2, "provider": "visa", "value": 20.0, "settled": "Y"},
        {"id": 3, "provider": "mc", "value": 5.0, "settled": "N"},
        {"id": 4, "provider": "mc", "value": 7.5, "settled": "N"},
    ])
    return database


class TestEndToEnd:
    def test_select_where(self, sql_db):
        rows = sql_db.run("r", "run_sql",
                          "SELECT id FROM orders WHERE settled = 'N' "
                          "ORDER BY id")
        assert [r["id"] for r in rows] == [1, 3, 4]

    def test_select_aggregate_group_by(self, sql_db):
        rows = sql_db.run(
            "r", "run_sql",
            "SELECT SUM(value) AS exposure, COUNT(*) AS n FROM orders "
            "WHERE settled = 'N' GROUP BY provider")
        by_n = {r["provider"]: r["exposure"] for r in rows}
        assert by_n == {"visa": 10.0, "mc": 12.5}

    def test_insert_visible_transactionally(self, sql_db):
        sql_db.run("r", "run_sql",
                   "INSERT INTO orders (id, provider, value, settled)"
                   " VALUES (9, 'amex', ?, 'N')", 33.0)
        rows = sql_db.run("r", "run_sql",
                          "SELECT value FROM orders WHERE id = 9")
        assert rows == [{"value": 33.0}]

    def test_update_where_count(self, sql_db):
        count = sql_db.run("r", "run_sql",
                           "UPDATE orders SET settled = 'Y' "
                           "WHERE settled = 'N'")
        assert count == 3
        remaining = sql_db.run("r", "run_sql",
                               "SELECT COUNT(*) AS n FROM orders "
                               "WHERE settled = 'N'")
        assert remaining[0]["n"] == 0

    def test_delete_where_count(self, sql_db):
        count = sql_db.run("r", "run_sql",
                           "DELETE FROM orders WHERE provider = 'mc'")
        assert count == 2
        rows = sql_db.run("r", "run_sql",
                          "SELECT COUNT(*) AS n FROM orders")
        assert rows[0]["n"] == 2

    def test_limit_and_order(self, sql_db):
        rows = sql_db.run("r", "run_sql",
                          "SELECT id FROM orders ORDER BY value DESC "
                          "LIMIT 2")
        assert [r["id"] for r in rows] == [2, 1]

    def test_between(self, sql_db):
        rows = sql_db.run("r", "run_sql",
                          "SELECT id FROM orders WHERE value "
                          "BETWEEN 6 AND 15 ORDER BY id")
        assert [r["id"] for r in rows] == [1, 4]
