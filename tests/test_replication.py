"""Replication subsystem: shipping, acks, read routing, failover."""

import pytest

from repro.bench.harness import run_measurement
from repro.core.database import ReactorDatabase
from repro.core.deployment import DeploymentConfig, shared_nothing
from repro.durability import enable_durability
from repro.errors import (
    DeploymentError,
    ReplicationError,
    TransactionAbort,
)
from repro.formal.audit import certify_replication
from repro.replication import ReplicationConfig
from repro.workloads import smallbank as sb

N = 8


def replicated_bank(mode="sync", replicas=1, read_from_replicas=False,
                    n_containers=2, async_lag_us=200.0,
                    n_customers=N):
    config = ReplicationConfig(
        replicas_per_container=replicas, mode=mode,
        read_from_replicas=read_from_replicas,
        async_lag_us=async_lag_us)
    database = ReactorDatabase(
        shared_nothing(n_containers, replication=config),
        sb.declarations(n_customers))
    sb.load(database, n_customers)
    return database


def run_transfers(database, count=10, n_customers=N):
    committed = 0
    for i in range(count):
        src = sb.reactor_name(i % n_customers)
        dst = sb.reactor_name((i + 1) % n_customers)
        try:
            database.run(src, "transfer", src, dst, 2.0)
            committed += 1
        except TransactionAbort:
            pass
    return committed


def bank_state(database, n_customers=N):
    return {
        (name, table): database.table_rows(name, table)
        for name in (sb.reactor_name(i) for i in range(n_customers))
        for table in ("savings", "checking")
    }


class TestConfig:
    def test_round_trip(self):
        config = ReplicationConfig(replicas_per_container=2,
                                   mode="async",
                                   read_from_replicas=True,
                                   async_lag_us=50.0)
        assert ReplicationConfig.from_dict(config.to_dict()) == config

    def test_defaults_disabled(self):
        assert not ReplicationConfig().enabled

    def test_mode_needs_replicas(self):
        with pytest.raises(DeploymentError):
            ReplicationConfig(replicas_per_container=0, mode="sync")

    def test_replicas_need_a_mode(self):
        """replicas with mode 'none' would silently build nothing —
        exactly the config-typo class strict validation exists for."""
        with pytest.raises(DeploymentError, match="none"):
            ReplicationConfig(replicas_per_container=2)

    def test_unknown_mode_rejected(self):
        with pytest.raises(DeploymentError):
            ReplicationConfig(replicas_per_container=1, mode="eventual")

    def test_read_routing_needs_replicas(self):
        with pytest.raises(DeploymentError):
            ReplicationConfig(read_from_replicas=True)

    @pytest.mark.parametrize("scheme", ["2pl_nowait", "2pl_waitdie",
                                        "none"])
    def test_read_routing_requires_occ(self, scheme):
        """Replica log applies bypass locking; only OCC validation
        catches a read overlapping an apply, so read routing under
        any other scheme is rejected at deployment validation."""
        config = ReplicationConfig(replicas_per_container=1,
                                   mode="sync",
                                   read_from_replicas=True)
        with pytest.raises(DeploymentError, match="occ"):
            shared_nothing(2, cc_scheme=scheme, replication=config)

    def test_replication_without_read_routing_allows_2pl(self):
        config = ReplicationConfig(replicas_per_container=1,
                                   mode="sync")
        database = ReactorDatabase(
            shared_nothing(2, cc_scheme="2pl_nowait",
                           replication=config),
            sb.declarations(4))
        sb.load(database, 4)
        database.run(sb.reactor_name(0), "deposit_checking", 1.0)
        assert certify_replication(database)["ok"]

    def test_unknown_key_rejected(self):
        with pytest.raises(DeploymentError, match="replicaz"):
            ReplicationConfig.from_dict({"replicaz": 3})

    def test_deployment_json_round_trip(self):
        deployment = shared_nothing(
            2, replication=ReplicationConfig(
                replicas_per_container=1, mode="sync"))
        restored = DeploymentConfig.from_json(deployment.to_json())
        assert restored.replication == deployment.replication

    def test_manager_refuses_disabled_config(self):
        from repro.replication import ReplicationManager

        database = ReactorDatabase(shared_nothing(1),
                                   sb.declarations(2))
        with pytest.raises(ReplicationError):
            ReplicationManager(database, ReplicationConfig())


class TestShipping:
    def test_sync_replicas_apply_every_record(self):
        database = replicated_bank(mode="sync")
        run_transfers(database, 10)
        manager = database.replication
        assert manager.stats.records_shipped > 0
        assert manager.stats.records_applied == \
            manager.stats.records_shipped \
            * database.deployment.replication.replicas_per_container
        for cid, group in manager.replicas.items():
            for replica in group:
                assert replica.applied_records == manager.shipped[cid]

    def test_async_applies_after_bounded_lag(self):
        database = replicated_bank(mode="async", async_lag_us=5_000.0)
        outcome = {}
        database.submit(sb.reactor_name(0), "deposit_checking", 10.0,
                        on_done=lambda r, ok, why, res:
                        outcome.update(ok=ok))
        # Drain past the commit but not past the apply lag.
        database.scheduler.run(until=1_000.0)
        manager = database.replication
        assert outcome["ok"]
        assert manager.stats.records_shipped == 1
        assert manager.stats.records_applied == 0
        database.scheduler.run()
        assert manager.stats.records_applied == 1
        assert manager.stats.max_lag_us >= 5_000.0

    def test_sync_commit_latency_includes_ack(self):
        plain = ReactorDatabase(shared_nothing(2),
                                sb.declarations(N))
        sb.load(plain, N)
        replicated = replicated_bank(mode="sync")

        def latency(database):
            start = database.scheduler.now
            database.run(sb.reactor_name(0), "deposit_checking", 1.0)
            return database.scheduler.now - start

        costs = replicated.costs
        minimum_ack = costs.repl_ship_delay + costs.repl_ack_delay
        assert latency(replicated) >= latency(plain) + minimum_ack
        assert replicated.replication.stats.sync_commit_waits == 1

    def test_replication_implies_durability_and_is_shared(self):
        database = replicated_bank()
        assert database.durability is database.replication.durability
        # A later explicit enable must return the same manager, not
        # detach the logs replication ships from.
        assert enable_durability(database) is database.durability

    def test_stats_surface_in_abort_counts(self):
        database = replicated_bank()
        run_transfers(database, 4)
        counts = database.abort_counts()
        assert counts["replication"]["mode"] == "sync"
        assert counts["replication"]["records_shipped"] > 0


class TestReadReplicaRouting:
    def test_balance_routed_to_replica(self):
        database = replicated_bank(read_from_replicas=True)
        total = database.run(sb.reactor_name(0), "balance")
        assert total == 2 * sb.INITIAL_BALANCE
        assert database.replication.stats \
            .reads_routed_to_replicas == 1

    def test_explicit_read_only_flag_routes(self):
        database = replicated_bank(read_from_replicas=True)
        done = {}
        database.submit(sb.reactor_name(0), "balance",
                        read_only=True,
                        on_done=lambda r, ok, why, res:
                        done.update(ok=ok, res=res))
        database.scheduler.run()
        assert done["ok"] and done["res"] == 2 * sb.INITIAL_BALANCE
        assert database.replication.stats \
            .reads_routed_to_replicas == 1

    def test_bounded_staleness_window_observable(self):
        database = replicated_bank(mode="async",
                                   read_from_replicas=True,
                                   async_lag_us=5_000.0)
        database.run(sb.reactor_name(0), "deposit_checking", 100.0)
        # The run() above drained everything, apply included: replica
        # reads now see the deposit (monotonic catch-up)...
        assert database.run(sb.reactor_name(0), "balance") == \
            2 * sb.INITIAL_BALANCE + 100.0
        # ...but a read inside the lag window sees the stale prefix.
        database.submit(sb.reactor_name(0), "deposit_checking", 50.0)
        now = database.scheduler.now
        database.scheduler.run(until=now + 1_000.0)
        stale = {}
        database.submit(sb.reactor_name(0), "balance",
                        on_done=lambda r, ok, why, res:
                        stale.update(res=res))
        database.scheduler.run(until=now + 2_000.0)
        assert stale["res"] == 2 * sb.INITIAL_BALANCE + 100.0
        database.scheduler.run()
        assert database.run(sb.reactor_name(0), "balance") == \
            2 * sb.INITIAL_BALANCE + 150.0

    def test_read_only_transaction_cannot_write(self):
        database = replicated_bank(read_from_replicas=True)
        with pytest.raises(TransactionAbort, match="read-only"):
            database.run(sb.reactor_name(0), "deposit_checking", 1.0,
                         read_only=True)
        # Replica state untouched.
        assert database.run(sb.reactor_name(0), "balance") == \
            2 * sb.INITIAL_BALANCE

    def test_replica_read_cannot_escape_its_container(self):
        """A replica's shadows are a consistent prefix of *its own*
        primary only; letting the transaction call into another
        container's live primary could mix prefix epochs into a torn
        cross-container read — so the call aborts."""
        from repro.core.reactor import ReactorType
        from repro.relational import float_col, make_schema, str_col

        KV = ReactorType("ReplKv", lambda: [
            make_schema("kv", [str_col("k"), float_col("v")], ["k"]),
        ])

        @KV.procedure
        def get_local(ctx):
            return ctx.lookup("kv", "k")["v"]

        @KV.procedure(read_only=True)
        def read_remote(ctx, other):
            fut = yield ctx.call(other, "get_local")
            return (yield ctx.get(fut))

        config = ReplicationConfig(replicas_per_container=1,
                                   mode="sync",
                                   read_from_replicas=True)
        database = ReactorDatabase(
            shared_nothing(2, replication=config),
            [("a", KV), ("b", KV)])  # modulo placement: a->0, b->1
        for name in ("a", "b"):
            database.load(name, "kv", [{"k": "k", "v": 1.0}])
        with pytest.raises(TransactionAbort, match="outside"):
            database.run("a", "read_remote", "b")
        # Same-container (self) reads on the replica still work.
        assert database.run("a", "get_local", read_only=True) == 1.0

    def test_writes_stay_on_primary_without_flag(self):
        database = replicated_bank(read_from_replicas=True)
        database.run(sb.reactor_name(0), "deposit_checking", 5.0)
        assert database.run(sb.reactor_name(0), "balance") == \
            2 * sb.INITIAL_BALANCE + 5.0


class TestAudit:
    def test_certifies_clean_run(self):
        database = replicated_bank(replicas=2)
        run_transfers(database, 12)
        report = certify_replication(database)
        assert report["ok"]
        assert len(report["replicas"]) == 4  # 2 containers x 2
        assert all(r["prefix_ok"] and r["commit_order_ok"]
                   and r["state_ok"] for r in report["replicas"])

    def test_detects_tampered_replica_state(self):
        database = replicated_bank()
        run_transfers(database, 5)
        replica = database.replication.replicas[0][0]
        shadow = replica.shadow(replica.shadow_names()[0])
        table = shadow.table("checking")
        record = next(iter(table.iter_records()))
        record.value = dict(record.value, balance=-1.0)
        report = certify_replication(database)
        assert not report["ok"]
        assert any(not r["state_ok"] for r in report["replicas"])

    def test_detects_truncated_shipped_sequence(self):
        database = replicated_bank()
        run_transfers(database, 5)
        manager = database.replication
        # Drop a mid-sequence record from the reference order: the
        # replica's applied sequence is no longer a prefix.
        del manager.shipped[0][0]
        report = certify_replication(database)
        assert not report["ok"]

    def test_disabled_replication_reports_clean(self):
        database = ReactorDatabase(shared_nothing(1),
                                   sb.declarations(2))
        report = certify_replication(database)
        assert report == {"enabled": False, "ok": True,
                          "replicas": [], "failovers": []}

    def test_certifies_unloaded_database(self):
        """Empty (declared-but-unfilled) tables must not fail the
        state check — untouched and emptied are the same state."""
        config = ReplicationConfig(replicas_per_container=1,
                                   mode="sync")
        database = ReactorDatabase(
            shared_nothing(2, replication=config),
            sb.declarations(4))
        assert certify_replication(database)["ok"]


class TestFailover:
    def test_promotion_preserves_committed_state(self):
        database = replicated_bank(mode="sync")
        run_transfers(database, 10)
        before = bank_state(database)
        victims = [name for i in range(N)
                   if (name := sb.reactor_name(i)) in database
                   and database.reactor(name).container.container_id
                   == 0]
        database.replication.kill_and_promote(0)
        database.scheduler.run()
        assert bank_state(database) == before
        report = certify_replication(database)
        assert report["ok"]
        assert report["failovers"][0]["zero_committed_loss"]
        # Routing was re-registered: the victims' reactors now live on
        # the promoted replica container.
        promoted = database.containers[0]
        for name in victims:
            assert database.reactor(name).container is promoted

    def test_promoted_container_accepts_new_transactions(self):
        database = replicated_bank(mode="sync")
        run_transfers(database, 6)
        database.replication.kill_and_promote(0)
        database.scheduler.run()
        before = database.run(sb.reactor_name(0), "balance")
        database.run(sb.reactor_name(0), "deposit_checking", 7.0)
        assert database.run(sb.reactor_name(0), "balance") == \
            pytest.approx(before + 7.0)
        # New commits append to the promoted log and certify.
        assert certify_replication(database)["ok"]

    def test_promote_requires_a_failed_primary(self):
        """Promoting over a live primary would fork the shipped
        order (two listeners appending divergent histories)."""
        database = replicated_bank(mode="sync")
        with pytest.raises(ReplicationError, match="alive"):
            database.replication.promote(0)

    def test_unreplicated_container_cannot_promote(self):
        database = ReactorDatabase(shared_nothing(1),
                                   sb.declarations(2))
        with pytest.raises(AttributeError):
            database.replication.kill_and_promote(0)

    def test_kill_finishes_queued_roots_without_callback(self):
        database = replicated_bank(mode="sync")
        victim = next(
            sb.reactor_name(i) for i in range(N)
            if database.reactor(sb.reactor_name(i))
            .container.container_id == 0)
        root = database.submit(victim, "deposit_checking", 1.0)
        assert not root.finished  # queued, dispatch not yet run
        database.replication.kill_primary(0)
        assert root.finished  # drained as aborted, not left in flight
        assert database.replication.stats.failover_aborts == 1
        # Roots refused at submit are availability impact too.
        database.submit(victim, "deposit_checking", 1.0)
        assert database.replication.stats.failover_aborts == 2

    def test_promotion_preserves_cc_stats(self):
        database = replicated_bank(mode="sync")
        run_transfers(database, 8)
        validations_before = database.abort_counts()["validations"]
        assert validations_before > 0
        database.replication.kill_and_promote(0)
        database.scheduler.run()
        assert database.abort_counts()["validations"] >= \
            validations_before

    def test_failed_container_refuses_new_roots(self):
        database = replicated_bank(mode="sync")
        database.replication.kill_primary(0)
        victim = next(
            sb.reactor_name(i) for i in range(N)
            if database.reactor(sb.reactor_name(i))
            .container.container_id == 0)
        with pytest.raises(TransactionAbort, match="failed"):
            database.run(victim, "deposit_checking", 1.0)

    def test_mid_run_kill_sync_loses_no_reported_commit(self):
        """The acceptance scenario, deterministically scaled down:
        concurrent workers, primary killed mid-measurement, every
        transaction reported committed must have its redo record on a
        surviving log."""
        n_customers = 12
        database = replicated_bank(mode="sync",
                                   n_customers=n_customers)
        workload = sb.SmallbankWorkload(n_customers)
        database.scheduler.at(
            15_000.0, database.replication.kill_and_promote, 0)
        result = run_measurement(
            database, 4, workload.factory_for,
            warmup_us=2_000.0, measure_us=25_000.0, n_epochs=2)
        assert result.summary.committed > 0
        report = certify_replication(database)
        assert report["ok"]
        assert all(f["zero_committed_loss"]
                   for f in report["failovers"])
        manager = database.replication
        surviving = {r.commit_tid
                     for records in manager.shipped.values()
                     for r in records}
        surviving |= database.containers[0].applied_tids
        lost = [s.txn_id for s in result.raw_stats
                if s.committed and s.writes > 0
                and s.commit_tid not in surviving]
        assert lost == []
        assert manager.stats.failover_aborts >= 0  # counter exists

    def test_recovery_onto_replicated_deployment_seeds_replicas(self):
        """recover() may target any deployment — including one with
        replicas, which must be seeded with the recovered image so
        read routing and later failover work immediately."""
        from repro.durability import (
            enable_durability,
            recover,
            take_checkpoint,
        )

        source = ReactorDatabase(shared_nothing(2),
                                 sb.declarations(N))
        sb.load(source, N)
        manager = enable_durability(source)
        run_transfers(source, 8)
        checkpoint = take_checkpoint(source)
        target = ReplicationConfig(replicas_per_container=1,
                                   mode="sync",
                                   read_from_replicas=True)
        recovered = recover(
            shared_nothing(2, replication=target),
            sb.declarations(N), checkpoint, manager.logs.values())
        # Replica-routed read works and sees the recovered state.
        expected = (source.run(sb.reactor_name(0), "balance"))
        assert recovered.run(sb.reactor_name(0), "balance") == expected
        assert recovered.replication.stats \
            .reads_routed_to_replicas == 1
        assert certify_replication(recovered)["ok"]
        # And the recovered replicas can take over.
        recovered.run(sb.reactor_name(0), "deposit_checking", 2.0)
        recovered.replication.kill_and_promote(0)
        recovered.scheduler.run()
        assert certify_replication(recovered)["ok"]

    def test_sync_kill_inside_ack_window_stays_atomic(self):
        """A cross-container transfer whose primary dies at *any*
        instant of the commit/ship/ack window must never end up half
        applied: sync drains the ship channel at the kill, so the
        promoted replica holds the debit whenever the surviving
        container holds the credit."""
        src, dst = sb.reactor_name(0), sb.reactor_name(1)

        def run_with_kill(kill_at):
            database = replicated_bank(mode="sync")
            outcome = {}
            database.submit(src, "transfer", src, dst, 5.0,
                            on_done=lambda r, ok, why, res:
                            outcome.update(ok=ok))
            if kill_at is not None:
                database.scheduler.at(
                    kill_at, database.replication.kill_and_promote, 0)
            database.scheduler.run()
            return database, outcome

        database, outcome = run_with_kill(None)
        assert outcome["ok"]
        window_end = int(database.scheduler.now) + 1
        for kill_at in range(1, window_end):
            database, outcome = run_with_kill(float(kill_at))
            money = sum(
                row["balance"]
                for i in range(N)
                for table in ("savings", "checking")
                for row in database.table_rows(sb.reactor_name(i),
                                               table))
            assert money == 2 * sb.INITIAL_BALANCE * N, \
                f"atomicity broken at kill t={kill_at}"
            report = certify_replication(database)
            assert report["ok"], kill_at
            assert not report["failovers"][0]["atomicity_breaks"]
            # The commit may be reported either way depending on when
            # the kill landed, but a reported commit must be durable
            # on the promoted container (via drained apply pre-kill,
            # or via the normal path when it committed post-promote).
            if outcome["ok"]:
                assert database.run(src, "balance") == \
                    2 * sb.INITIAL_BALANCE - 5.0

    def test_sync_in_doubt_commit_resolves_without_promotion(self):
        """Kill inside the ack window with promotion deferred: the
        drained replicas all hold the record, so the in-doubt commit
        is truthfully reported committed — a client retry would
        otherwise double-apply after the eventual promotion."""
        src, dst = sb.reactor_name(0), sb.reactor_name(1)
        probe = replicated_bank(mode="sync")
        done = {}
        probe.submit(src, "transfer", src, dst, 5.0,
                     on_done=lambda r, ok, why, res:
                     done.update(t=probe.scheduler.now))
        probe.scheduler.run()
        kill_at = done["t"] - 1.5  # inside the ack window

        database = replicated_bank(mode="sync")
        outcome = {}
        database.submit(src, "transfer", src, dst, 5.0,
                        on_done=lambda r, ok, why, res:
                        outcome.update(ok=ok))
        database.scheduler.at(
            kill_at, database.replication.kill_primary, 0)
        database.scheduler.run()
        assert outcome["ok"]  # resolved from replica coverage
        database.replication.promote(0)
        database.scheduler.run()
        assert database.run(src, "balance") == \
            2 * sb.INITIAL_BALANCE - 5.0
        assert certify_replication(database)["ok"]

    def test_async_failover_reports_loss_window(self):
        database = replicated_bank(mode="async",
                                   async_lag_us=50_000.0)
        outcomes = []
        for i in range(6):
            database.submit(sb.reactor_name(0), "deposit_checking",
                            1.0, on_done=lambda r, ok, why, res:
                            outcomes.append(ok))
        # Commit everything but let no apply land, then crash.
        database.scheduler.run(until=5_000.0)
        assert outcomes and all(outcomes)
        database.replication.kill_and_promote(0)
        database.scheduler.run()
        report = certify_replication(database)
        event = report["failovers"][0]
        # Async: committed-but-unshipped suffix is lost (bounded by
        # the lag window), and the audit reports exactly how much.
        assert event["lost_records"] == 6
        assert event["zero_committed_loss"]  # nothing was *acked*
        assert report["ok"]
