"""Remaining coverage: report formatting details, catalog edges,
record locking, error taxonomy."""

import pytest

from repro.bench.report import _fmt, format_table
from repro.errors import (
    DangerousStructureAbort,
    ReactorError,
    SchemaError,
    TransactionAbort,
    UserAbort,
    ValidationAbort,
)
from repro.relational import Catalog, int_col, make_schema
from repro.storage.record import VersionedRecord


class TestReportFormatting:
    def test_float_formats(self):
        assert _fmt(0.0) == "0"
        assert _fmt(1234.5) == "1,234"  # banker's rounding
        assert _fmt(42.42) == "42.4"
        assert _fmt(1.2345) == "1.234"  # 3 decimals under 10
        assert _fmt("text") == "text"

    def test_numbers_right_aligned_text_left(self):
        table = format_table(["name", "value"],
                             [["alpha", 1.0], ["b", 123.0]])
        lines = table.splitlines()
        assert lines[2].startswith("alpha")
        assert lines[2].rstrip().endswith("1.000")

    def test_empty_rows(self):
        table = format_table(["a"], [])
        assert "a" in table


class TestCatalog:
    def test_duplicate_table_rejected(self):
        schema = make_schema("t", [int_col("a")], ["a"])
        catalog = Catalog([schema])
        with pytest.raises(SchemaError):
            catalog.create_table(schema)

    def test_missing_table_reports_known(self):
        catalog = Catalog([make_schema("t", [int_col("a")], ["a"])])
        with pytest.raises(SchemaError) as exc:
            catalog.table("missing")
        assert "t" in str(exc.value)

    def test_contains_and_iter(self):
        catalog = Catalog([make_schema("t", [int_col("a")], ["a"])])
        assert "t" in catalog
        assert "u" not in catalog
        assert [t.name for t in catalog] == ["t"]


class TestVersionedRecord:
    def test_lock_reentrant_for_owner(self):
        record = VersionedRecord((1,), {"a": 1}, tid=1)
        assert record.lock(7)
        assert record.lock(7)
        assert not record.lock(8)
        assert record.is_locked_by_other(8)
        assert not record.is_locked_by_other(7)

    def test_unlock_only_by_owner(self):
        record = VersionedRecord((1,), {"a": 1}, tid=1)
        record.lock(7)
        record.unlock(8)  # no-op
        assert record.locked_by == 7
        record.unlock(7)
        assert record.locked_by is None

    def test_snapshot_is_defensive(self):
        record = VersionedRecord((1,), {"a": 1}, tid=1)
        snap = record.snapshot()
        snap["a"] = 99
        assert record.value["a"] == 1


class TestErrorTaxonomy:
    def test_aborts_are_reactor_errors(self):
        for error_type in (TransactionAbort, UserAbort,
                           ValidationAbort, DangerousStructureAbort):
            assert issubclass(error_type, ReactorError)

    def test_abort_subtree(self):
        assert issubclass(UserAbort, TransactionAbort)
        assert issubclass(ValidationAbort, TransactionAbort)
        assert issubclass(DangerousStructureAbort, TransactionAbort)

    def test_one_except_clause_catches_everything(self):
        caught = []
        for error in (UserAbort("u"), ValidationAbort("v"),
                      SchemaError("s")):
            try:
                raise error
            except ReactorError as exc:
                caught.append(type(exc).__name__)
        assert len(caught) == 3
