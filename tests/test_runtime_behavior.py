"""Runtime behavior: futures, cooperative multitasking, MPL,
latency-breakdown attribution, cache-affinity accounting."""

import pytest

from repro.core.database import ReactorDatabase
from repro.core.deployment import shared_nothing
from repro.core.reactor import ReactorType
from repro.errors import SimulationError
from repro.relational import float_col, make_schema, str_col
from repro.runtime.futures import SimFuture
from tests.conftest import make_bank


class TestSimFuture:
    def test_resolve_and_result(self):
        fut = SimFuture(remote=True, subtxn_id=1, target_reactor="r")
        fut.resolve(42, now=1.0)
        assert fut.resolved
        assert fut.result() == 42
        assert fut.consumed

    def test_fail_raises_on_result(self):
        fut = SimFuture(remote=True, subtxn_id=1, target_reactor="r")
        error = ValueError("boom")
        fut.fail(error, now=1.0)
        with pytest.raises(ValueError):
            fut.result()

    def test_double_resolve_rejected(self):
        fut = SimFuture(remote=False, subtxn_id=1, target_reactor="r")
        fut.resolve(1, now=1.0)
        with pytest.raises(SimulationError):
            fut.resolve(2, now=2.0)

    def test_waiter_fires_on_resolution(self):
        fut = SimFuture(remote=True, subtxn_id=1, target_reactor="r")
        seen = []
        fut.add_waiter(seen.append)
        assert not seen
        fut.resolve(5, now=1.0)
        assert seen == [fut]

    def test_waiter_fires_immediately_if_already_resolved(self):
        fut = SimFuture(remote=True, subtxn_id=1, target_reactor="r")
        fut.resolve(5, now=1.0)
        seen = []
        fut.add_waiter(seen.append)
        assert seen == [fut]

    def test_single_waiter_only(self):
        fut = SimFuture(remote=True, subtxn_id=1, target_reactor="r")
        fut.add_waiter(lambda f: None)
        with pytest.raises(SimulationError):
            fut.add_waiter(lambda f: None)

    def test_unresolved_result_rejected(self):
        fut = SimFuture(remote=True, subtxn_id=1, target_reactor="r")
        with pytest.raises(SimulationError):
            fut.result()


class TestBreakdownAttribution:
    def _run_and_stats(self, database, reactor, proc, *args):
        box = {}

        def on_done(root, committed, reason, result):
            box["stats"] = root.make_stats(
                database.scheduler.now, committed, reason)

        database.submit(reactor, proc, *args, on_done=on_done)
        database.scheduler.run()
        return box["stats"]

    def test_remote_transfer_pays_cs_and_cr(self, bank_sn):
        stats = self._run_and_stats(bank_sn, "acct0", "transfer",
                                    "acct5", 1.0)
        costs = bank_sn.costs
        assert stats.breakdown["cs"] == pytest.approx(costs.cs)
        assert stats.breakdown["cr"] == pytest.approx(costs.cr)
        assert stats.remote_calls == 1
        assert stats.containers == 2

    def test_inline_transfer_pays_no_communication(self,
                                                   bank_se_affinity):
        stats = self._run_and_stats(bank_se_affinity, "acct0",
                                    "transfer", "acct5", 1.0)
        assert stats.breakdown["cs"] == 0.0
        assert stats.breakdown["cr"] == 0.0
        assert stats.remote_calls == 0
        assert stats.containers == 1

    def test_immediate_get_wait_is_sync_execution(self, bank_sn):
        stats = self._run_and_stats(bank_sn, "acct0", "transfer",
                                    "acct5", 1.0)
        # transfer gets no other work between call and frame end, but
        # it debits before the implicit join: classified async.
        assert stats.breakdown["sync_execution"] > 0

    def test_fan_out_overlap_recorded(self, bank_sn):
        stats = self._run_and_stats(
            bank_sn, "acct0", "fan_out", ["acct1", "acct2", "acct4"],
            1.0)
        assert stats.remote_calls >= 2
        total = stats.breakdown["cs"]
        assert total == pytest.approx(
            bank_sn.costs.cs * stats.remote_calls)

    def test_compute_charges_sync_execution(self, bank_sn):
        stats = self._run_and_stats(bank_sn, "acct0", "busy_work",
                                    250.0)
        assert stats.breakdown["sync_execution"] >= 250.0

    def test_breakdown_stacks_to_latency(self, bank_sn):
        stats = self._run_and_stats(bank_sn, "acct0", "transfer",
                                    "acct5", 1.0)
        stacked = sum(stats.breakdown.values())
        # Client-side costs are added by workers, not db.submit; the
        # rest must account for (almost all of) the latency.
        assert stacked == pytest.approx(stats.latency, rel=0.25)

    def test_reads_writes_counted(self, bank_sn):
        stats = self._run_and_stats(bank_sn, "acct0", "transfer",
                                    "acct5", 1.0)
        assert stats.reads >= 2
        assert stats.writes == 2


class TestCooperativeMultitasking:
    def test_executor_overlaps_blocked_transactions(self):
        """While one txn waits on a remote sub-txn, its executor must
        process another (cooperative multitasking): pipelined
        submission beats strictly sequential execution."""
        pipelined = make_bank(shared_nothing(2, mpl=4))
        done = []
        for i in range(4):
            pipelined.submit(
                "acct0", "transfer", "acct1", 1.0,
                on_done=lambda *a, i=i: done.append(i))
        pipelined.scheduler.run()
        assert len(done) == 4

        sequential = make_bank(shared_nothing(2, mpl=4))
        for __ in range(4):
            sequential.run("acct0", "transfer", "acct1", 1.0)
        assert pipelined.scheduler.now < sequential.scheduler.now

    def test_mpl_one_still_admits_while_blocked(self):
        """Blocked tasks release their slot (the paper's thread
        hand-off), so MPL=1 does not deadlock on nested calls."""
        database = make_bank(shared_nothing(2, mpl=1))
        done = []
        # acct0 -> acct1 and acct1 -> acct0 concurrently: each executor
        # has a blocked task while the other's sub-txn arrives.
        database.submit("acct0", "transfer", "acct1", 1.0,
                        on_done=lambda *a: done.append("a"))
        database.submit("acct1", "transfer", "acct0", 2.0,
                        on_done=lambda *a: done.append("b"))
        database.scheduler.run()
        assert sorted(done) == ["a", "b"]

    def test_utilization_accounting(self):
        database = make_bank(shared_nothing(2))
        database.run("acct0", "busy_work", 1000.0)
        executor = database.reactor("acct0").pinned_executor
        assert executor.busy_time >= 1000.0
        assert executor.requests_served >= 1


class TestCacheAffinity:
    def test_cold_access_costs_more(self):
        database = make_bank(shared_nothing(2))
        # First transaction warms acct0 on its executor.
        database.run("acct0", "get_balance")
        start = database.scheduler.now
        database.run("acct0", "get_balance")
        warm = database.scheduler.now - start
        # Flush the reactor's cache warmth (as if evicted).
        database.reactor("acct0").mark_cold()
        start = database.scheduler.now
        database.run("acct0", "get_balance")
        cold = database.scheduler.now - start
        assert cold > warm

    def test_first_touch_rewarns_reactor(self):
        database = make_bank(shared_nothing(2))
        database.reactor("acct0").mark_cold()
        database.run("acct0", "get_balance")
        executor = database.reactor("acct0").pinned_executor
        assert database.reactor("acct0").last_core == executor.core_id
        assert database.reactor("acct0").core_heat[
            executor.core_id] == 1.0

    def test_heat_decays_with_other_cores(self):
        database = make_bank(shared_nothing(2))
        reactor = database.reactor("acct0")
        assert reactor.touch(0) == 0.0
        assert reactor.touch(1) == 0.0
        # Returning to core 0 after one intervening touch: partially
        # warm (one decay step).
        assert 0.0 < reactor.touch(0) < 1.0


class TestProcedureForms:
    def test_plain_function_procedure(self):
        """Procedures without yields (pure local logic) are allowed."""
        plain = ReactorType("Plain", lambda: [
            make_schema("kv", [str_col("k"), float_col("v")], ["k"]),
        ])

        @plain.procedure
        def put(ctx, key, value):
            ctx.insert("kv", {"k": key, "v": value})
            return value

        database = ReactorDatabase(shared_nothing(1), [("p", plain)])
        assert database.run("p", "put", "x", 1.5) == 1.5
        assert database.table_rows("p", "kv") == [
            {"k": "x", "v": 1.5}]

    def test_procedure_registration_conflict(self):
        rtype = ReactorType("Dup", lambda: [])

        @rtype.procedure
        def proc(ctx):
            return None

        with pytest.raises(Exception):
            rtype.procedure(proc)

    def test_kwargs_passed_through(self, bank_sn):
        result = bank_sn.run("acct0", "credit", amount=10.0)
        assert result == 110.0
