"""Edge coverage: container routing, worker deadlines, experiment
helpers, and TPC-C recovery."""

import pytest

from repro.bench.harness import run_measurement
from repro.core.database import ReactorDatabase
from repro.core.deployment import (
    ContainerSpec,
    DeploymentConfig,
    shared_nothing,
)
from repro.durability import enable_durability, recover, take_checkpoint
from repro.experiments import common
from repro.sim.machine import OPTERON_6274
from repro.workloads import tpcc
from tests.conftest import ACCOUNT, account_name, make_bank


class TestContainerRouting:
    def test_round_robin_over_unpinned_reactors(self):
        # A container with several executors and unpinned reactors
        # load-balances sub-calls round-robin.
        deployment = DeploymentConfig(
            name="multi-exec", containers=[ContainerSpec(executors=3)])
        database = ReactorDatabase(
            deployment, [(account_name(i), ACCOUNT) for i in range(3)])
        container = database.containers[0]
        reactor = database.reactor("acct0")
        first = container.route(reactor)
        second = container.route(reactor)
        third = container.route(reactor)
        fourth = container.route(reactor)
        assert {first, second, third} == set(container.executors)
        assert fourth is first

    def test_pinned_reactor_always_routes_home(self):
        database = make_bank(shared_nothing(3))
        reactor = database.reactor("acct0")
        container = reactor.container
        for __ in range(3):
            assert container.route(reactor) is reactor.pinned_executor


class TestWorkerBehavior:
    def test_worker_stops_at_deadline(self):
        database = make_bank(shared_nothing(3))

        def factory(worker_id):
            return lambda worker: ("acct0", "get_balance", ())

        result = run_measurement(database, 1, factory,
                                 warmup_us=0.0, measure_us=2_000.0,
                                 n_epochs=2)
        worker = result.workers[0]
        # No transaction was *issued* after the deadline.
        assert all(s.start <= 2_000.0 for s in worker.stats)
        # The simulation drained completely.
        assert database.scheduler.pending() == 0

    def test_factory_none_stops_early(self):
        database = make_bank(shared_nothing(3))
        issued = {"n": 0}

        def factory(worker_id):
            def gen(worker):
                if issued["n"] >= 3:
                    return None
                issued["n"] += 1
                return ("acct0", "get_balance", ())
            return gen

        result = run_measurement(database, 1, factory,
                                 warmup_us=0.0, measure_us=50_000.0,
                                 n_epochs=1)
        assert result.workers[0].issued == 3


class TestExperimentHelpers:
    def test_spread_destinations_cycle_containers(self):
        dsts = common.spread_destinations(7, customers_per_container=10)
        containers = [int(d[4:]) // 10 for d in dsts]
        assert containers == [0, 1, 2, 3, 4, 5, 6]

    def test_spread_reuses_containers_beyond_n(self):
        dsts = common.spread_destinations(9, customers_per_container=10)
        # Destination 7 wraps to container 0 with a fresh slot.
        assert dsts[7] != dsts[0]
        assert int(dsts[7][4:]) // 10 == 0

    def test_tpcc_deployment_names(self):
        for strategy in common.STRATEGIES:
            deployment = common.tpcc_deployment(strategy, 2)
            assert deployment.total_executors == 2
        with pytest.raises(ValueError):
            common.tpcc_deployment("psychic", 2)

    def test_tpcc_database_loads(self):
        scale = tpcc.TpccScale(districts=2, customers_per_district=5,
                               items=10, orders_per_district=4)
        database = common.tpcc_database("shared-nothing-async", 2,
                                        scale=scale)
        assert len(database.table_rows(tpcc.warehouse_name(1),
                                       "district")) == 2


class TestTpccRecovery:
    def test_recovery_preserves_tpcc_consistency(self):
        scale = tpcc.TpccScale(districts=2, customers_per_district=10,
                               items=20, orders_per_district=5,
                               last_names=4)
        database = ReactorDatabase(
            shared_nothing(2, machine=OPTERON_6274),
            tpcc.declarations(2))
        tpcc.load(database, 2, scale)
        durability = enable_durability(database)

        workload = tpcc.TpccWorkload(n_warehouses=2, scale=scale)
        run_measurement(database, 2, workload.factory_for,
                        warmup_us=1_000.0, measure_us=20_000.0,
                        n_epochs=2)
        tpcc.check_database(database, 2)

        # The checkpoint is the initial load image (logging started
        # right after it); recovery = image + full redo log.
        pristine = ReactorDatabase(shared_nothing(
            2, machine=OPTERON_6274), tpcc.declarations(2))
        tpcc.load(pristine, 2, scale)
        checkpoint = take_checkpoint(pristine)

        recovered = recover(
            shared_nothing(2, machine=OPTERON_6274),
            tpcc.declarations(2), checkpoint,
            durability.logs.values())
        tpcc.check_database(recovered, 2)
        for table in ("district", "orders", "order_line", "stock",
                      "customer", "new_order", "warehouse"):
            assert recovered.table_rows(tpcc.warehouse_name(1),
                                        table) == \
                database.table_rows(tpcc.warehouse_name(1), table)
