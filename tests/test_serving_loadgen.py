"""Open-loop load generation: schedules, percentiles, CO-awareness."""

from __future__ import annotations

import threading
import time

import pytest

from repro.client.base import Outcome, Submission
from repro.serving.loadgen import (
    ArrivalSchedule,
    OpenLoopResult,
    run_open_loop,
)


def test_fixed_schedule_is_evenly_spaced():
    sched = ArrivalSchedule.fixed(1000.0, 5)
    assert sched.kind == "fixed"
    assert sched.offsets_s == pytest.approx(
        [0.0, 0.001, 0.002, 0.003, 0.004])


def test_poisson_schedule_is_seeded():
    a = ArrivalSchedule.poisson(500.0, 50, seed=7)
    b = ArrivalSchedule.poisson(500.0, 50, seed=7)
    c = ArrivalSchedule.poisson(500.0, 50, seed=8)
    assert a.offsets_s == b.offsets_s
    assert a.offsets_s != c.offsets_s
    # Monotone arrivals with roughly the requested mean gap.
    assert a.offsets_s == sorted(a.offsets_s)
    mean_gap = a.offsets_s[-1] / len(a)
    assert 0.2 / 500.0 < mean_gap < 5.0 / 500.0


def test_rate_must_be_positive():
    with pytest.raises(ValueError):
        ArrivalSchedule.fixed(0.0, 5)
    with pytest.raises(ValueError):
        ArrivalSchedule.poisson(-1.0, 5)


def _result(latencies_us, **kwargs):
    defaults = dict(schedule=ArrivalSchedule.fixed(100.0,
                                                   len(latencies_us)),
                    offered=len(latencies_us),
                    committed=len(latencies_us), shed=0, failed=0,
                    duration_s=1.0,
                    latencies_us=sorted(latencies_us),
                    max_send_lag_us=0.0)
    defaults.update(kwargs)
    return OpenLoopResult(**defaults)


def test_percentiles_are_exact_nearest_rank():
    result = _result([float(i) for i in range(1, 1001)])
    assert result.p50_us == 500.0
    assert result.p99_us == 990.0
    assert result.p999_us == 999.0
    assert result.percentile_us(100.0) == 1000.0


def test_percentiles_of_tiny_samples():
    assert _result([7.0]).p999_us == 7.0
    assert _result([]).p50_us == 0.0


def test_summary_carries_arrival_rate_key():
    summary = _result([1.0, 2.0, 3.0]).summary()
    assert summary["arrival_rate"] == 100.0
    assert summary["arrival_process"] == "fixed"
    for key in ("p50_us", "p99_us", "p999_us", "throughput_tps",
                "shed_fraction", "max_send_lag_us"):
        assert key in summary


class InstantClient:
    """Resolves every submission immediately on the caller thread."""

    def __init__(self, outcome_for=None):
        self.outcome_for = outcome_for or \
            (lambda i: Outcome(True, result=i))
        self.count = 0

    def submit(self, reactor, proc, *args, read_only=None,
               on_done=None):
        sub = Submission()
        if on_done is not None:
            sub.add_done_callback(on_done)
        sub.resolve(self.outcome_for(self.count))
        self.count += 1
        return sub


class StallingClient(InstantClient):
    """Blocks the sender inside submit — the classic slow-server shape
    that coordinated omission hides."""

    def __init__(self, stall_s):
        super().__init__()
        self.stall_s = stall_s

    def submit(self, *args, **kwargs):
        time.sleep(self.stall_s)
        return super().submit(*args, **kwargs)


def test_open_loop_counts_outcomes():
    def outcome_for(i):
        if i % 3 == 0:
            return Outcome(True, result=i)
        if i % 3 == 1:
            return Outcome(False, reason="bound",
                           error_code="overloaded",
                           retry_after_us=10.0)
        return Outcome(False, reason="aborted")

    result = run_open_loop(
        InstantClient(outcome_for), ArrivalSchedule.fixed(2000.0, 30),
        lambda i: ("r", "p", ()))
    assert result.offered == 30
    assert result.committed == 10
    assert result.shed == 10
    assert result.failed == 10
    assert result.shed_fraction == pytest.approx(1 / 3)
    # Shed/failed requests contribute no latency samples.
    assert len(result.latencies_us) == 10


def test_latency_measured_from_intended_send_time():
    """A stalled sender charges the induced queueing delay to later
    requests: recorded latencies grow across the run even though each
    request is served instantly once sent.  A coordinated-omission-
    blind recorder would report ~0 for every request."""
    stall = 0.004
    n = 10
    # Intended rate far beyond what the stalling sender can sustain.
    result = run_open_loop(
        StallingClient(stall), ArrivalSchedule.fixed(10_000.0, n),
        lambda i: ("r", "p", ()))
    assert result.committed == n
    # The last request was intended ~n/rate in, but got sent after
    # ~n stalls: its recorded latency must reflect the backlog.
    assert result.latencies_us[-1] > (n - 2) * stall * 1e6 / 2
    assert result.max_send_lag_us > stall * 1e6
    # And the distribution is increasing, not flat at service time.
    assert result.p999_us > result.p50_us > 0


def test_open_loop_timeout_raises():
    class NeverClient:
        def submit(self, *args, **kwargs):
            return Submission()  # never resolves

    with pytest.raises(TimeoutError):
        run_open_loop(NeverClient(), ArrivalSchedule.fixed(1000.0, 3),
                      lambda i: ("r", "p", ()), timeout=0.2)


def test_open_loop_resolution_from_another_thread():
    """Submissions resolved off-thread (the TcpClient shape) drain."""
    pending = []

    class AsyncClient:
        def submit(self, reactor, proc, *args, read_only=None,
                   on_done=None):
            sub = Submission()
            if on_done is not None:
                sub.add_done_callback(on_done)
            pending.append(sub)
            return sub

    def resolver():
        while len(pending) < 5:
            time.sleep(0.001)
        for sub in pending:
            sub.resolve(Outcome(True))

    thread = threading.Thread(target=resolver, daemon=True)
    thread.start()
    result = run_open_loop(
        AsyncClient(), ArrivalSchedule.poisson(5000.0, 5, seed=3),
        lambda i: ("r", "p", ()), timeout=5.0)
    thread.join(timeout=5.0)
    assert result.committed == 5
