"""Wire framing and negotiation properties (repro.serving.protocol).

The framing contract: any message survives an encode/decode round
trip regardless of how TCP slices the byte stream — frames split
across arbitrarily many reads, frames coalesced into one read, both at
once — and a stream that ends mid-frame is rejected with the typed
:class:`TornFrameError`, never silently swallowed.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serving import protocol
from repro.serving.protocol import (
    FrameDecoder,
    TornFrameError,
    WireProtocolError,
    encode_frame,
)

# JSON-representable payloads (what procedures can return over the
# wire): scalars, then lists/dicts thereof.
scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-2**53, max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=40),
)
payloads = st.recursive(
    scalars,
    lambda inner: st.one_of(
        st.lists(inner, max_size=5),
        st.dictionaries(st.text(max_size=10), inner, max_size=5)),
    max_leaves=20,
)
messages = st.dictionaries(
    st.text(min_size=1, max_size=12), payloads, max_size=6)


def chop(data: bytes, cuts: list[int]) -> list[bytes]:
    """Slice ``data`` at relative cut points (simulated TCP reads)."""
    chunks, start = [], 0
    for cut in sorted(c % (len(data) + 1) for c in cuts):
        chunks.append(data[start:cut])
        start = cut
    chunks.append(data[start:])
    return [c for c in chunks if c]


@settings(max_examples=200, deadline=None)
@given(msgs=st.lists(messages, min_size=1, max_size=6),
       cuts=st.lists(st.integers(min_value=0), max_size=12))
def test_roundtrip_any_chunking(msgs, cuts):
    """N frames fed through arbitrary split/coalesce boundaries decode
    to exactly the original messages, in order."""
    stream = b"".join(encode_frame(m) for m in msgs)
    decoder = FrameDecoder("json")
    out = []
    for chunk in chop(stream, cuts):
        out.extend(decoder.feed(chunk))
    assert out == msgs
    decoder.check_eof()  # stream fully consumed: no torn frame


@settings(max_examples=100, deadline=None)
@given(msg=messages, keep=st.integers(min_value=1))
def test_torn_frame_rejected(msg, keep):
    """A stream truncated anywhere inside a frame raises the typed
    TornFrameError at EOF."""
    frame = encode_frame(msg)
    truncated = frame[:keep % len(frame)] or frame[:1]
    decoder = FrameDecoder("json")
    assert decoder.feed(truncated) == []
    with pytest.raises(TornFrameError):
        decoder.check_eof()


@settings(max_examples=50, deadline=None)
@given(msgs=st.lists(messages, min_size=1, max_size=4), msg=messages)
def test_torn_tail_after_complete_frames(msgs, msg):
    """Complete frames decode; the torn tail still raises at EOF."""
    tail = encode_frame(msg)[:-1]
    decoder = FrameDecoder("json")
    out = decoder.feed(b"".join(encode_frame(m) for m in msgs) + tail)
    assert out == msgs
    with pytest.raises(TornFrameError):
        decoder.check_eof()


def test_oversize_declared_length_rejected():
    decoder = FrameDecoder("json", max_frame_bytes=64)
    huge = (1 << 20).to_bytes(4, "big")
    with pytest.raises(WireProtocolError, match="exceeds"):
        decoder.feed(huge)


def test_oversize_encode_rejected():
    with pytest.raises(WireProtocolError, match="exceeds"):
        encode_frame({"blob": "x" * (protocol.MAX_FRAME_BYTES + 1)})


def test_undecodable_payload_rejected():
    frame = len(b"not json").to_bytes(4, "big") + b"not json"
    with pytest.raises(WireProtocolError, match="undecodable"):
        FrameDecoder("json").feed(frame)


def test_unknown_codec_rejected():
    with pytest.raises(WireProtocolError, match="unknown codec"):
        FrameDecoder("zstd")


def test_negotiate_picks_highest_common_version():
    version, codec = protocol.negotiate([1, 99], ["json"])
    assert version == protocol.PROTOCOL_VERSION
    assert codec == "json"


def test_negotiate_rejects_version_mismatch():
    with pytest.raises(WireProtocolError, match="no common protocol"):
        protocol.negotiate([99], ["json"])


def test_negotiate_rejects_codec_mismatch():
    with pytest.raises(WireProtocolError, match="no common codec"):
        protocol.negotiate([1], ["zstd"])


def test_negotiate_respects_client_codec_preference():
    offered = list(protocol.available_codecs())
    __, codec = protocol.negotiate([1], offered)
    assert codec == offered[0]


def test_json_codec_always_available():
    assert "json" in protocol.available_codecs()


def test_validate_request_accepts_wellformed():
    msg = protocol.request(1, 0, "acct", "credit", (1.0,),
                           read_only=True)
    assert protocol.validate_request(msg) is None


@pytest.mark.parametrize("mutate,expected", [
    (lambda m: m.pop("id"), "missing field 'id'"),
    (lambda m: m.update(id="one"), "field 'id' has type"),
    (lambda m: m.update(args=7), "field 'args' has type"),
    (lambda m: m.update(read_only="yes"), "'read_only' must be"),
])
def test_validate_request_rejects_malformed(mutate, expected):
    msg = protocol.request(1, 0, "acct", "credit", (1.0,))
    mutate(msg)
    assert expected in protocol.validate_request(msg)


def test_validate_request_rejects_non_mapping():
    assert protocol.validate_request([1, 2]) == \
        "request is not a mapping"
