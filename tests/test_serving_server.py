"""The served path end to end: server, TcpClient, equivalence.

The headline property (ISSUE 10 acceptance): the same seeded workload
submitted through a ``LocalClient`` (embedded) and a ``TcpClient``
(served over real TCP) commits to identical state, and ``certify_all``
passes on both paths — the wire boundary changes *where* transactions
originate, not what they do.
"""

from __future__ import annotations

import json
import socket
import struct

import pytest

from repro.client import LocalClient, TcpClient
from repro.core.database import ReactorDatabase
from repro.core.deployment import RangePlacement, shared_nothing
from repro.formal.audit import attach_recorder, certify_all
from repro.serving import protocol, serve_in_thread
from repro.serving.protocol import Overloaded
from repro.workloads import smallbank as sb

N_CUSTOMERS = 8
N_CONTAINERS = 2
MAX_RETRIES = 50


def make_database(backend: str = "sim") -> ReactorDatabase:
    deployment = shared_nothing(
        N_CONTAINERS, mpl=4, cc_scheme="occ",
        placement=RangePlacement(N_CUSTOMERS // N_CONTAINERS),
        backend=backend)
    database = ReactorDatabase(deployment, sb.declarations(N_CUSTOMERS))
    sb.load(database, N_CUSTOMERS)
    return database


def seeded_ops() -> list[tuple[str, str, tuple]]:
    """A deterministic op list with order-independent final state:
    commutative per-account sums plus cross-container transfers."""
    ops = []
    for i in range(40):
        cust = sb.reactor_name(i % N_CUSTOMERS)
        if i % 3 == 0:
            ops.append((cust, "transact_saving", (10.0 + i,)))
        elif i % 3 == 1:
            ops.append((cust, "deposit_checking", (5.0 + i,)))
        else:
            other = sb.reactor_name((i + 3) % N_CUSTOMERS)
            ops.append(sb.multi_transfer_spec(
                "fully-async", cust, [other], 2.0))
    return ops


def run_to_commit(client, ops):
    """Drive every op to a committed conclusion through a Client,
    resubmitting on abort (and on shed) — same contract as the
    backend-equivalence suite, expressed against the Client surface."""
    done = []

    def submit(op, tries=MAX_RETRIES):
        def on_done(outcome):
            if outcome.committed:
                done.append(op)
                return
            assert tries > 0, \
                f"op {op} failed too often: {outcome.reason}"
            submit(op, tries - 1)
        reactor, proc, args = op
        client.submit(reactor, proc, *args, on_done=on_done)

    for op in ops:
        submit(op)
    if hasattr(client, "drain"):
        client.drain()
    else:
        deadline_ops = len(ops)
        import time
        for _ in range(2000):
            if len(done) >= deadline_ops:
                break
            time.sleep(0.005)
    assert len(done) == len(ops)


def committed_state(database):
    return {
        name: {
            table: sorted(
                (tuple(sorted(row.items()))
                 for row in database.table_rows(name, table)))
            for table in ("savings", "checking")
        }
        for name in database.reactor_names()
    }


def test_local_vs_served_equivalence():
    """Same seeded ops, embedded vs over-the-wire: identical committed
    state, certify_all green on both."""
    ops = seeded_ops()

    local_db = make_database()
    attach_recorder(local_db)
    run_to_commit(LocalClient(local_db), ops)
    local_state = committed_state(local_db)
    local_cert = certify_all(local_db)
    local_total = sb.total_money(local_db, N_CUSTOMERS)
    local_db.close()

    served_db = make_database()
    attach_recorder(served_db)
    server = serve_in_thread(served_db)
    client = TcpClient(server.host, server.port).connect()
    run_to_commit(client, ops)
    client.close()
    server.stop()
    served_state = committed_state(served_db)
    served_cert = certify_all(served_db)
    served_total = sb.total_money(served_db, N_CUSTOMERS)
    served_db.close()

    assert local_cert["ok"], local_cert["failures"]
    assert served_cert["ok"], served_cert["failures"]
    assert served_total == pytest.approx(local_total)
    assert served_state == local_state


def test_served_threads_backend_smoke():
    """The server fronts the wall-clock threads backend natively (no
    pump): a round trip commits and is visible."""
    database = make_database(backend="threads")
    server = serve_in_thread(database)
    client = TcpClient(server.host, server.port).connect()
    try:
        sub = client.submit(sb.reactor_name(0), "deposit_checking",
                            7.5)
        assert sub.wait(10.0).committed
    finally:
        client.close()
        server.stop()
        database.close()


def test_session_multiplexing_out_of_order():
    """Many logical sessions share one connection; responses match by
    (session, id) even when submitted interleaved."""
    database = make_database()
    server = serve_in_thread(database)
    client = TcpClient(server.host, server.port).connect()
    try:
        sessions = [client.session() for _ in range(4)]
        subs = []
        for i in range(24):
            session = sessions[i % 4]
            subs.append((i, session.submit(
                sb.reactor_name(i % N_CUSTOMERS), "deposit_checking",
                float(i))))
        for i, sub in subs:
            outcome = sub.wait(10.0)
            assert outcome.committed, (i, outcome.reason)
    finally:
        client.close()
        server.stop()
        database.close()


def test_overload_shed_is_typed_with_retry_hint():
    """Past the admission bound, requests are refused with a typed
    overloaded error carrying a positive retry-after hint — and the
    admitted ones still commit."""
    database = make_database()
    server = serve_in_thread(database, max_inflight=4)
    client = TcpClient(server.host, server.port).connect()
    try:
        subs = client.submit_many(
            [(sb.reactor_name(i % N_CUSTOMERS), "transact_saving",
              (1.0,)) for i in range(48)])
        outcomes = [s.wait(10.0) for s in subs]
        shed = [o for o in outcomes if o.shed]
        committed = [o for o in outcomes if o.committed]
        assert committed, "nothing was admitted"
        assert shed, "a 48-burst against max_inflight=4 must shed"
        assert all(o.retry_after_us > 0 for o in shed)
        with pytest.raises(Overloaded):
            shed[0].unwrap()
    finally:
        client.close()
        server.stop()
        database.close()


def test_serving_metrics_registered():
    """Accepted/shed counters and the inflight gauge appear in the
    telemetry snapshot after a served burst."""
    database = make_database()
    if not database.telemetry.enabled:
        pytest.skip("telemetry disabled in this configuration")
    server = serve_in_thread(database, max_inflight=4)
    client = TcpClient(server.host, server.port).connect()
    try:
        subs = client.submit_many(
            [(sb.reactor_name(i % N_CUSTOMERS), "transact_saving",
              (1.0,)) for i in range(32)])
        for sub in subs:
            sub.wait(10.0)
    finally:
        client.close()
        server.stop()
    snapshot = database.telemetry.metrics_snapshot()
    assert snapshot["serving_accepted_total"] > 0
    assert snapshot["serving_shed_total"] > 0
    assert snapshot["serving_connections_total"] >= 1
    assert snapshot["serving_inflight"] == 0  # all drained
    database.close()


# ----------------------------------------------------------------------
# Raw-socket behaviors a well-behaved TcpClient never triggers.
# ----------------------------------------------------------------------

def _recv_frame(sock: socket.socket) -> dict:
    header = b""
    while len(header) < 4:
        header += sock.recv(4 - len(header))
    (length,) = struct.unpack(">I", header)
    payload = b""
    while len(payload) < length:
        payload += sock.recv(length - len(payload))
    return json.loads(payload)


def test_version_mismatch_answered_with_hello_error():
    database = make_database()
    server = serve_in_thread(database)
    try:
        with socket.create_connection(
                (server.host, server.port), timeout=10) as sock:
            sock.sendall(protocol.encode_frame(
                {"type": "hello", "versions": [99],
                 "codecs": ["json"]}))
            answer = _recv_frame(sock)
            assert answer["type"] == "hello_error"
            assert "no common protocol version" in answer["detail"]
    finally:
        server.stop()
        database.close()


def test_malformed_request_answered_with_typed_error():
    database = make_database()
    server = serve_in_thread(database)
    try:
        with socket.create_connection(
                (server.host, server.port), timeout=10) as sock:
            sock.sendall(protocol.encode_frame(protocol.hello()))
            assert _recv_frame(sock)["type"] == "hello_ok"
            sock.sendall(protocol.encode_frame(
                {"type": "request", "id": 1, "session": 0}))
            answer = _recv_frame(sock)
            assert answer["type"] == "error"
            assert answer["code"] == protocol.ERR_BAD_REQUEST
            assert "missing field" in answer["detail"]
    finally:
        server.stop()
        database.close()


def test_unknown_reactor_answered_with_typed_error():
    database = make_database()
    server = serve_in_thread(database)
    client = TcpClient(server.host, server.port).connect()
    try:
        outcome = client.submit("nobody", "nothing").wait(10.0)
        assert not outcome.committed
        assert outcome.error_code == protocol.ERR_UNKNOWN_REACTOR
    finally:
        client.close()
        server.stop()
        database.close()


def test_undecodable_frame_answered_then_closed():
    database = make_database()
    server = serve_in_thread(database)
    try:
        with socket.create_connection(
                (server.host, server.port), timeout=10) as sock:
            sock.sendall(protocol.encode_frame(protocol.hello()))
            assert _recv_frame(sock)["type"] == "hello_ok"
            sock.sendall(struct.pack(">I", 8) + b"not json")
            answer = _recv_frame(sock)
            assert answer["type"] == "error"
            assert answer["code"] == protocol.ERR_BAD_REQUEST
            # The server closes after a framing violation.
            assert sock.recv(4096) == b""
    finally:
        server.stop()
        database.close()
