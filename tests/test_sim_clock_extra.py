"""Determinism and reproducibility guarantees of the simulator.

The entire reproduction hinges on the discrete-event substrate being
deterministic: same seed, same inputs, byte-identical behavior.  These
tests pin that property at increasing levels of the stack.
"""

from repro.bench.harness import run_measurement
from repro.core.database import ReactorDatabase
from repro.core.deployment import shared_nothing
from repro.experiments.common import tpcc_database
from repro.sim.machine import OPTERON_6274
from repro.workloads import tpcc
from tests.conftest import make_bank


def test_scheduler_interleavings_reproducible():
    traces = []
    for __ in range(2):
        database = make_bank(shared_nothing(3, mpl=4))
        trace = []
        for i in range(10):
            database.submit(
                f"acct{i % 3}", "transfer", f"acct{(i + 3) % 6}", 1.0,
                on_done=lambda root, ok, r, res, i=i: trace.append(
                    (i, ok, round(database.scheduler.now, 6))))
        database.scheduler.run()
        traces.append(trace)
    assert traces[0] == traces[1]


def test_tpcc_measurement_fully_deterministic():
    summaries = []
    scale = tpcc.TpccScale(districts=2, customers_per_district=10,
                           items=20, orders_per_district=5)
    for __ in range(2):
        database = tpcc_database("shared-nothing-async", 2,
                                 scale=scale)
        workload = tpcc.TpccWorkload(n_warehouses=2, scale=scale)
        result = run_measurement(database, 3, workload.factory_for,
                                 warmup_us=1_000.0,
                                 measure_us=15_000.0, n_epochs=3)
        summaries.append((
            result.summary.committed,
            result.summary.aborted,
            round(result.summary.latency_us, 9),
            round(result.summary.throughput_tps, 9),
        ))
    assert summaries[0] == summaries[1]


def test_different_seed_changes_inputs_not_correctness():
    from repro.workloads import smallbank as sb

    totals = []
    for seed in (1, 2):
        database = ReactorDatabase(shared_nothing(3),
                                   sb.declarations(6))
        sb.load(database, 6)
        workload = sb.SmallbankWorkload(
            6, mix=("transfer", "balance"))
        result = run_measurement(database, 2, workload.factory_for,
                                 warmup_us=500.0, measure_us=8_000.0,
                                 n_epochs=2, seed=seed)
        assert result.summary.committed > 0
        totals.append(sb.total_money(database, 6))
    # Different input streams, same invariant.
    assert totals[0] == totals[1] == 6 * 2 * sb.INITIAL_BALANCE


def test_machine_profile_does_not_change_results_only_timing():
    from repro.workloads import smallbank as sb

    states = []
    times = []
    for machine in (None, OPTERON_6274):
        kwargs = {"machine": machine} if machine else {}
        database = ReactorDatabase(shared_nothing(3, **kwargs),
                                   sb.declarations(6))
        sb.load(database, 6)
        database.run(sb.reactor_name(0), "transfer",
                     sb.reactor_name(0), sb.reactor_name(4), 7.0)
        states.append(database.table_rows(sb.reactor_name(4),
                                          "savings"))
        times.append(database.scheduler.now)
    assert states[0] == states[1]
    assert times[1] > times[0]  # the Opteron profile is slower
