"""Tests for RNG streams, zipfian generation, costs and machines."""

import random

import pytest

from repro.sim.costs import CostParameters
from repro.sim.machine import (
    OPTERON_6274,
    XEON_E3_1276,
    MachineProfile,
    get_profile,
)
from repro.sim.rng import RngFactory, ZipfianGenerator


class TestRngFactory:
    def test_streams_are_reproducible(self):
        a = RngFactory(1).stream("x").random()
        b = RngFactory(1).stream("x").random()
        assert a == b

    def test_streams_are_independent_by_name(self):
        factory = RngFactory(1)
        assert factory.stream("x").random() != \
            factory.stream("y").random()

    def test_seed_changes_stream(self):
        assert RngFactory(1).stream("x").random() != \
            RngFactory(2).stream("x").random()


class TestZipfian:
    def test_range(self):
        zipf = ZipfianGenerator(100, 0.99, random.Random(1))
        values = [zipf.next() for __ in range(1000)]
        assert all(0 <= v < 100 for v in values)

    def test_zero_theta_is_uniformish(self):
        zipf = ZipfianGenerator(10, 0.0, random.Random(1))
        values = [zipf.next() for __ in range(5000)]
        counts = [values.count(i) for i in range(10)]
        assert min(counts) > 300  # roughly uniform

    def test_high_theta_concentrates_on_head(self):
        zipf = ZipfianGenerator(10_000, 5.0, random.Random(1))
        values = [zipf.next() for __ in range(1000)]
        assert values.count(0) > 900

    def test_moderate_skew_orders_popularity(self):
        zipf = ZipfianGenerator(1000, 0.99, random.Random(1))
        values = [zipf.next() for __ in range(20_000)]
        assert values.count(0) > values.count(100) > 0

    def test_higher_theta_more_skew(self):
        low = ZipfianGenerator(1000, 0.5, random.Random(1))
        high = ZipfianGenerator(1000, 0.99, random.Random(1))
        low_head = sum(1 for __ in range(5000) if low.next() < 10)
        high_head = sum(1 for __ in range(5000) if high.next() < 10)
        assert high_head > low_head

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ZipfianGenerator(0, 0.5, random.Random(1))
        with pytest.raises(ValueError):
            ZipfianGenerator(10, -1.0, random.Random(1))


class TestCostParameters:
    def test_defaults_have_receive_asymmetry(self):
        costs = CostParameters()
        assert costs.cr > costs.cs  # the paper's Cs/Cr asymmetry

    def test_scaled(self):
        costs = CostParameters().scaled(2.0)
        assert costs.cs == pytest.approx(CostParameters().cs * 2)
        assert costs.cold_access_factor == \
            CostParameters().cold_access_factor

    def test_symmetric_ablation(self):
        costs = CostParameters().with_symmetric_communication()
        assert costs.cr == costs.cs

    def test_frozen(self):
        with pytest.raises(Exception):
            CostParameters().cs = 1.0  # type: ignore[misc]


class TestMachineProfiles:
    def test_profiles_registered(self):
        assert get_profile("xeon-e3-1276") is XEON_E3_1276
        assert get_profile("opteron-6274") is OPTERON_6274

    def test_unknown_profile(self):
        with pytest.raises(KeyError):
            get_profile("cray-1")

    def test_opteron_has_more_threads_and_costlier_cross_core(self):
        assert OPTERON_6274.hardware_threads > \
            XEON_E3_1276.hardware_threads
        assert OPTERON_6274.costs.cr > XEON_E3_1276.costs.cr

    def test_machine_needs_threads(self):
        with pytest.raises(ValueError):
            MachineProfile(name="dud", hardware_threads=0)
