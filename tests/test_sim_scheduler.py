"""Unit tests for the discrete-event scheduler and virtual clock."""

import pytest

from repro.errors import SimulationError
from repro.sim.clock import VirtualClock
from repro.sim.scheduler import SimScheduler


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now == 0.0

    def test_advance(self):
        clock = VirtualClock()
        clock.advance_to(5.0)
        assert clock.now == 5.0

    def test_advance_is_monotonic(self):
        clock = VirtualClock()
        clock.advance_to(5.0)
        with pytest.raises(SimulationError):
            clock.advance_to(4.0)

    def test_advance_to_same_time_is_fine(self):
        clock = VirtualClock()
        clock.advance_to(5.0)
        clock.advance_to(5.0)
        assert clock.now == 5.0

    def test_reset(self):
        clock = VirtualClock()
        clock.advance_to(10.0)
        clock.reset()
        assert clock.now == 0.0


class TestSimScheduler:
    def test_events_run_in_time_order(self):
        scheduler = SimScheduler()
        order = []
        scheduler.after(3.0, order.append, "c")
        scheduler.after(1.0, order.append, "a")
        scheduler.after(2.0, order.append, "b")
        scheduler.run()
        assert order == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        scheduler = SimScheduler()
        order = []
        scheduler.after(1.0, order.append, 1)
        scheduler.after(1.0, order.append, 2)
        scheduler.after(1.0, order.append, 3)
        scheduler.run()
        assert order == [1, 2, 3]

    def test_clock_advances_with_events(self):
        scheduler = SimScheduler()
        seen = []
        scheduler.after(2.5, lambda: seen.append(scheduler.now))
        scheduler.run()
        assert seen == [2.5]
        assert scheduler.now == 2.5

    def test_events_can_schedule_events(self):
        scheduler = SimScheduler()
        seen = []

        def first():
            scheduler.after(1.0, lambda: seen.append(scheduler.now))

        scheduler.after(1.0, first)
        scheduler.run()
        assert seen == [2.0]

    def test_cancelled_events_are_skipped(self):
        scheduler = SimScheduler()
        seen = []
        event = scheduler.after(1.0, seen.append, "x")
        event.cancel()
        scheduler.run()
        assert seen == []

    def test_run_until_stops_early(self):
        scheduler = SimScheduler()
        seen = []
        scheduler.after(1.0, seen.append, "early")
        scheduler.after(10.0, seen.append, "late")
        scheduler.run(until=5.0)
        assert seen == ["early"]
        assert scheduler.now == 5.0
        scheduler.run()
        assert seen == ["early", "late"]

    def test_cannot_schedule_in_the_past(self):
        scheduler = SimScheduler()
        scheduler.after(5.0, lambda: None)
        scheduler.run()
        with pytest.raises(SimulationError):
            scheduler.at(1.0, lambda: None)

    def test_negative_delay_rejected(self):
        scheduler = SimScheduler()
        with pytest.raises(SimulationError):
            scheduler.after(-1.0, lambda: None)

    def test_max_events_guards_livelock(self):
        scheduler = SimScheduler()

        def respawn():
            scheduler.soon(respawn)

        scheduler.soon(respawn)
        with pytest.raises(SimulationError):
            scheduler.run(max_events=100)

    def test_soon_runs_at_current_time(self):
        scheduler = SimScheduler()
        times = []
        scheduler.after(3.0, lambda: scheduler.soon(
            lambda: times.append(scheduler.now)))
        scheduler.run()
        assert times == [3.0]

    def test_pending_counts_live_events(self):
        scheduler = SimScheduler()
        event = scheduler.after(1.0, lambda: None)
        scheduler.after(2.0, lambda: None)
        assert scheduler.pending() == 2
        event.cancel()
        assert scheduler.pending() == 1

    def test_dispatch_counter(self):
        scheduler = SimScheduler()
        for __ in range(5):
            scheduler.soon(lambda: None)
        scheduler.run()
        assert scheduler.events_dispatched == 5


class TestRunUntilBoundary:
    """run(until=...) quiesce contract: events stamped exactly *at*
    ``until`` run before the call returns (regression: they used to
    be skipped when their timestamp drifted a float ulp past it)."""

    def test_event_exactly_at_until_runs(self):
        scheduler = SimScheduler()
        seen = []
        scheduler.at(5.0, seen.append, "at-boundary")
        scheduler.at(5.0 + 1e-6, seen.append, "beyond")
        scheduler.run(until=5.0)
        assert seen == ["at-boundary"]
        assert scheduler.now == 5.0
        assert scheduler.pending() == 1

    def test_chain_scheduled_at_until_runs(self):
        # An at-boundary event scheduling another soon() at the same
        # timestamp: the whole same-time chain belongs to the window.
        scheduler = SimScheduler()
        seen = []
        scheduler.at(5.0, lambda: scheduler.soon(seen.append, "chain"))
        scheduler.run(until=5.0)
        assert seen == ["chain"]

    def test_float_drift_within_tolerance_runs(self):
        # after(0.1 + 0.2) lands at 0.30000000000000004; run(until=0.3)
        # must still dispatch it — the same 1e-9 slack at() applies to
        # past timestamps applies at the until boundary.
        scheduler = SimScheduler()
        seen = []
        scheduler.after(0.1 + 0.2, seen.append, "drifted")
        scheduler.run(until=0.3)
        assert seen == ["drifted"]

    def test_event_beyond_tolerance_stays_queued(self):
        scheduler = SimScheduler()
        seen = []
        scheduler.at(5.0 + 1e-6, seen.append, "late")
        scheduler.run(until=5.0)
        assert seen == []
        assert scheduler.pending() == 1


class TestBackendHooks:
    """SimScheduler's execution-backend surface (repro.runtime.backend)
    restates the pre-backend behaviour exactly."""

    def test_identity_attrs(self):
        scheduler = SimScheduler()
        assert scheduler.name == "sim"
        assert scheduler.is_virtual is True
        assert scheduler.lock is None
        assert scheduler.future_class is None

    def test_post_matches_soon(self):
        scheduler = SimScheduler()
        order = []
        scheduler.soon(order.append, "a")
        scheduler.post(3, order.append, "b")
        scheduler.soon(order.append, "c")
        scheduler.run()
        assert order == ["a", "b", "c"]

    def test_busy_advances_virtual_time(self):
        scheduler = SimScheduler()
        times = []
        scheduler.busy(7.5, lambda: times.append(scheduler.now))
        scheduler.run()
        assert times == [7.5]

    def test_guards_are_noop_context_managers(self):
        scheduler = SimScheduler()
        with scheduler.state_guard():
            with scheduler.commit_guard([0, 1]):
                pass

    def test_admit_root_always_true(self):
        assert SimScheduler().admit_root(object()) is True
