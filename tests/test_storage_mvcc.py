"""Unit tests of the multi-version storage engine.

Version chains, the visibility rule, watermark-driven GC, the
pluggable store registry, copy-free installation, and the table-level
snapshot read surface — exercised directly, below the runtime.
"""

from __future__ import annotations

import pytest

from repro.relational import IndexSpec, float_col, int_col, make_schema
from repro.relational.table import Table
from repro.storage import (
    RecordVersion,
    StorageCoordinator,
    VersionedRecord,
    VersionedStore,
    create_store,
    register_store,
    store_kinds,
)


def _record(value: float, tid: int) -> VersionedRecord:
    return VersionedRecord((1,), {"id": 1, "v": value}, tid)


class TestVersionChains:
    def test_install_without_watermark_keeps_no_history(self):
        record = _record(1.0, 5)
        kept, pruned = record.install({"id": 1, "v": 2.0}, 10)
        assert (kept, pruned) == (0, 0)
        assert record.prev is None
        assert record.tid == 10

    def test_install_with_watermark_pushes_version(self):
        record = _record(1.0, 5)
        kept, __ = record.install({"id": 1, "v": 2.0}, 10,
                                  keep_watermark=5)
        assert kept == 1
        assert isinstance(record.prev, RecordVersion)
        assert record.prev.tid == 5
        assert record.prev.value["v"] == 1.0

    def test_visibility_walks_to_newest_qualifying_version(self):
        record = _record(1.0, 5)
        record.install({"id": 1, "v": 2.0}, 10, keep_watermark=1)
        record.install({"id": 1, "v": 3.0}, 20, keep_watermark=1)
        assert record.visible_at(25)["v"] == 3.0
        assert record.visible_at(15)["v"] == 2.0
        assert record.visible_at(7)["v"] == 1.0
        image, tid = record.version_at(3)
        assert image is None and tid == 0

    def test_visibility_returns_copies(self):
        record = _record(1.0, 5)
        record.install({"id": 1, "v": 2.0}, 10, keep_watermark=1)
        image = record.visible_at(7)
        image["v"] = 99.0
        assert record.visible_at(7)["v"] == 1.0

    def test_tombstone_versions_hide_the_row(self):
        record = _record(1.0, 5)
        record.mark_deleted(10, keep_watermark=1)
        assert record.visible_at(7)["v"] == 1.0
        assert record.visible_at(15) is None
        # Revival through install: the tombstone joins the chain.
        record.install({"id": 1, "v": 4.0}, 20, keep_watermark=1)
        assert record.visible_at(12) is None
        assert record.visible_at(20)["v"] == 4.0

    def test_prune_chain_drops_below_watermark(self):
        record = _record(1.0, 5)
        for tid, v in ((10, 2.0), (20, 3.0), (30, 4.0)):
            record.install({"id": 1, "v": v}, tid, keep_watermark=1)
        assert record.chain_length() == 3
        # Watermark 20: version 20 still serves pinned snapshots, the
        # tid-5 and tid-10 versions are unreachable.
        dropped = record.prune_chain(20)
        assert dropped == 2
        assert record.visible_at(25)["v"] == 3.0
        assert record.visible_at(12) is None

    def test_prune_chain_none_drops_everything(self):
        record = _record(1.0, 5)
        record.install({"id": 1, "v": 2.0}, 10, keep_watermark=1)
        assert record.prune_chain(None) == 1
        assert record.prev is None

    def test_install_takes_ownership_without_copy(self):
        record = _record(1.0, 5)
        owned = {"id": 1, "v": 2.0}
        record.install(owned, 10)
        assert record.value is owned  # copy-free hot path


class TestStoreRegistry:
    def test_builtin_versioned_store(self):
        assert "versioned" in store_kinds()
        assert isinstance(create_store(), VersionedStore)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown store kind"):
            create_store("btree-on-mars")

    def test_custom_store_registers(self):
        class TinyStore(VersionedStore):
            kind = "tiny"

        register_store("tiny")(TinyStore)
        try:
            assert isinstance(create_store("tiny"), TinyStore)
        finally:
            from repro.storage import store as store_module

            del store_module._STORE_FACTORIES["tiny"]

    def test_latest_visible_is_the_store_level_rule(self):
        store = VersionedStore()
        record = _record(1.0, 5)
        store.put((1,), record)
        record.install({"id": 1, "v": 2.0}, 10, keep_watermark=1)
        assert store.latest_visible((1,), 7) == {"id": 1, "v": 1.0}
        assert store.latest_visible((1,), 10) == {"id": 1, "v": 2.0}
        assert store.latest_visible((2,), 10) is None

    def test_store_gc_counts_drops(self):
        store = VersionedStore()
        for key in (1, 2):
            record = VersionedRecord((key,), {"id": key, "v": 0.0}, 1)
            store.put((key,), record)
            record.install({"id": key, "v": 1.0}, 10, keep_watermark=1)
        assert store.live_version_count() == 2
        assert store.gc(None) == 2
        assert store.live_version_count() == 0


def _table() -> Table:
    schema = make_schema(
        "t", [int_col("id"), float_col("v")], ["id"],
        [IndexSpec("by_v", ("v",), ordered=True)])
    return Table(schema)


class TestTableVersioning:
    def test_standalone_table_keeps_no_history(self):
        table = _table()
        table.load_row({"id": 1, "v": 1.0}, tid=5)
        table.install_update(table.get_record((1,)),
                             {"id": 1, "v": 2.0}, 10)
        assert table.live_version_count() == 0

    def test_coordinated_table_retains_versions_while_pinned(self):
        table = _table()
        coordinator = StorageCoordinator()
        table.versioning = coordinator
        table.load_row({"id": 1, "v": 1.0}, tid=5)
        coordinator.pin(txn_id=99, snapshot_tid=5)
        table.install_update(table.get_record((1,)),
                             {"id": 1, "v": 2.0}, 10)
        assert table.live_version_count() == 1
        assert table.read_as_of((1,), 5) == {"id": 1, "v": 1.0}
        assert table.read_as_of((1,), 10) == {"id": 1, "v": 2.0}
        assert coordinator.stats.versions_created == 1
        # Unpin: the next install prunes down to nothing.
        coordinator.unpin(99)
        table.install_update(table.get_record((1,)),
                             {"id": 1, "v": 3.0}, 20)
        assert table.live_version_count() == 0
        assert coordinator.stats.versions_gced >= 1

    def test_rows_as_of_is_a_consistent_cut(self):
        table = _table()
        coordinator = StorageCoordinator()
        table.versioning = coordinator
        table.load_row({"id": 1, "v": 1.0}, tid=5)
        table.load_row({"id": 2, "v": 1.0}, tid=5)
        coordinator.pin(txn_id=1, snapshot_tid=5)
        table.install_update(table.get_record((1,)),
                             {"id": 1, "v": 9.0}, 10)
        table.install_delete(table.get_record((2,)), 11)
        assert table.rows_as_of(5) == [{"id": 1, "v": 1.0},
                                       {"id": 2, "v": 1.0}]
        assert table.rows_as_of(11) == [{"id": 1, "v": 9.0}]

    def test_deleted_rows_stay_visible_to_older_snapshots(self):
        table = _table()
        coordinator = StorageCoordinator()
        table.versioning = coordinator
        table.load_row({"id": 1, "v": 1.0}, tid=5)
        coordinator.pin(txn_id=1, snapshot_tid=5)
        table.install_delete(table.get_record((1,)), 10)
        assert table.get_record((1,)) is None  # invisible live
        assert table.read_as_of((1,), 5) == {"id": 1, "v": 1.0}
        assert table.read_as_of((1,), 10) is None

    def test_explicit_gc_sweep(self):
        table = _table()
        coordinator = StorageCoordinator()
        table.versioning = coordinator
        table.load_row({"id": 1, "v": 1.0}, tid=5)
        coordinator.pin(txn_id=1, snapshot_tid=5)
        table.install_update(table.get_record((1,)),
                             {"id": 1, "v": 2.0}, 10)
        coordinator.unpin(1)
        # No further installs: the chain lingers until a sweep.
        assert table.live_version_count() == 1
        assert table.gc_versions(coordinator.keep_watermark()) == 1
        assert table.live_version_count() == 0

    def test_keep_watermark_is_min_pinned(self):
        coordinator = StorageCoordinator()
        assert coordinator.keep_watermark() is None
        coordinator.pin(1, 30)
        coordinator.pin(2, 10)
        assert coordinator.keep_watermark() == 10
        coordinator.unpin(2)
        assert coordinator.keep_watermark() == 30

    def test_keep_watermark_is_scoped(self):
        """A replica-routed pin retains history only on its replica's
        shadows — primary installs keep nothing for it."""
        coordinator = StorageCoordinator()
        coordinator.pin(1, 10, scope="replica-A")
        assert coordinator.keep_watermark() is None
        assert coordinator.keep_watermark("replica-A") == 10
        assert coordinator.keep_watermark("replica-B") is None
        coordinator.pin(2, 30)
        assert coordinator.keep_watermark() == 30
        assert coordinator.keep_watermark("replica-A") == 10
