"""The unified telemetry subsystem (repro.telemetry).

Covers the metrics registry (catalog enforcement, histogram
percentiles, label rendering, Prometheus text), the deterministic
tracer (same seed => byte-identical Chrome export, across runs and
across the batched/reference commit engines), the disabled path
(no spans allocated, legacy stats shapes intact), the bench-summary
embedding, and the trace validator (tools/check_trace.py).
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

from repro.bench.harness import drain_telemetry_summaries, run_measurement
from repro.concurrency import batch
from repro.core.database import ReactorDatabase
from repro.core.deployment import RangePlacement, shared_nothing
from repro.durability.config import DurabilityConfig
from repro.errors import SimulationError
from repro.replication.config import ReplicationConfig
from repro.telemetry import MetricsRegistry, TelemetryConfig
from repro.telemetry.config import full_tracing
from repro.telemetry.facade import ABORT_REASONS
from repro.workloads import smallbank as sb

TOOLS = Path(__file__).parent.parent / "tools"


def load_tool(name: str):
    spec = importlib.util.spec_from_file_location(name,
                                                  TOOLS / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


check_trace = load_tool("check_trace")
trace_export = load_tool("trace_export")

N = 12


@pytest.fixture(autouse=True)
def _drain_bench_log():
    """Keep the module-level bench telemetry log from leaking between
    tests (and into any benchmark collected in the same process)."""
    yield
    drain_telemetry_summaries()


def build_db(telemetry: TelemetryConfig | None = None,
             durability: DurabilityConfig | None = None,
             replication: ReplicationConfig | None = None
             ) -> ReactorDatabase:
    deployment = shared_nothing(3, mpl=4, placement=RangePlacement(4),
                                durability=durability,
                                replication=replication)
    if telemetry is not None:
        deployment.telemetry = telemetry
    database = ReactorDatabase(deployment, sb.declarations(N))
    sb.load(database, N)
    return database


def drive(database: ReactorDatabase, seed: int = 42,
          measure_us: float = 6_000.0):
    return run_measurement(database, 3,
                           sb.SmallbankWorkload(N).factory_for,
                           warmup_us=1_000.0, measure_us=measure_us,
                           n_epochs=2, seed=seed)


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------

class TestMetricsRegistry:
    def test_counter_counts_and_is_shared(self):
        registry = MetricsRegistry()
        counter = registry.counter("txn_commits_total")
        counter.inc()
        counter.inc(2)
        assert registry.value("txn_commits_total") == 3
        assert registry.counter("txn_commits_total") is counter

    def test_gauge_set_and_collector(self):
        registry = MetricsRegistry()
        registry.gauge("scheduler_pending_events").set(7)
        assert registry.value("scheduler_pending_events") == 7
        backing = {"v": 1}
        registry.gauge_fn("scheduler_pending_events",
                          lambda: backing["v"])
        backing["v"] = 42
        assert registry.value("scheduler_pending_events") == 42
        # Re-registration re-points the collector (idempotent: what
        # promotion/log replacement relies on).
        registry.gauge_fn("scheduler_pending_events", lambda: -1)
        assert registry.value("scheduler_pending_events") == -1

    def test_unknown_metric_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(SimulationError):
            registry.counter("not_in_the_catalog_total")

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(SimulationError):
            # Cataloged as a counter, requested as a gauge.
            registry.gauge("txn_commits_total")

    def test_histogram_percentiles_nearest_rank(self):
        registry = MetricsRegistry()
        hist = registry.histogram("txn_commit_latency_us")
        for value in (1.0, 2.0, 3.0, 100.0):
            hist.observe(value)
        summary = hist.summary()
        assert summary["count"] == 4
        assert summary["sum"] == 106.0
        assert summary["min"] == 1.0
        assert summary["max"] == 100.0
        # Nearest rank 2 of 4 at q=0.5 -> the 2.0 observation's
        # bucket upper bound.
        assert summary["p50"] == 2.0
        # The top observation's bucket bound is 128, clamped to the
        # exact max.
        assert summary["p99"] == 100.0
        assert summary["p999"] == 100.0

    def test_empty_histogram(self):
        registry = MetricsRegistry()
        hist = registry.histogram("txn_abort_latency_us")
        assert hist.percentile(0.99) == 0.0
        assert hist.summary()["count"] == 0

    def test_snapshot_label_rendering(self):
        registry = MetricsRegistry()
        registry.gauge("log_fsyncs_total", container=0).set(5)
        registry.gauge("log_fsyncs_total", container=1).set(9)
        snap = registry.snapshot()
        assert snap['log_fsyncs_total{container="0"}'] == 5
        assert snap['log_fsyncs_total{container="1"}'] == 9

    def test_value_of_unregistered_is_zero(self):
        assert MetricsRegistry().value("txn_commits_total") == 0

    def test_render_prometheus(self):
        registry = MetricsRegistry()
        registry.counter("txn_commits_total").inc(3)
        registry.histogram("txn_commit_latency_us").observe(10.0)
        registry.gauge("log_fsyncs_total", container=0).set(2)
        text = registry.render_prometheus()
        assert "# HELP txn_commits_total" in text
        assert "# TYPE txn_commits_total counter" in text
        assert "txn_commits_total 3" in text
        assert "# TYPE txn_commit_latency_us summary" in text
        assert 'txn_commit_latency_us{quantile="99"}' in text
        assert "txn_commit_latency_us_count 1" in text
        assert 'log_fsyncs_total{container="0"} 2' in text


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------

class TestTelemetryConfig:
    def test_defaults(self):
        config = TelemetryConfig()
        assert config.enabled
        assert config.trace_sample == 64
        assert not config.trace_system
        assert config.tracing

    def test_master_switch_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY", "0")
        assert not TelemetryConfig().enabled

    def test_trace_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "off")
        assert TelemetryConfig().trace_sample == 0
        monkeypatch.setenv("REPRO_TRACE", "all")
        config = TelemetryConfig()
        assert config.trace_sample == 1
        assert config.trace_system
        monkeypatch.setenv("REPRO_TRACE", "16")
        assert TelemetryConfig().trace_sample == 16
        monkeypatch.setenv("REPRO_TRACE", "bogus")
        assert TelemetryConfig().trace_sample == 64

    def test_roundtrip(self):
        config = TelemetryConfig(enabled=True, trace_sample=8,
                                 trace_system=True)
        assert TelemetryConfig.from_dict(config.to_dict()) == config

    def test_full_tracing(self):
        config = full_tracing()
        assert config.trace_sample == 1 and config.trace_system


# ----------------------------------------------------------------------
# Deterministic tracing
# ----------------------------------------------------------------------

class TestTraceDeterminism:
    def test_same_seed_byte_identical(self):
        exports = []
        for __ in range(2):
            database = build_db(telemetry=full_tracing())
            drive(database, seed=7)
            exports.append(database.telemetry.export_chrome_json())
        assert exports[0] == exports[1]
        assert '"ph": "X"' in exports[0]

    def test_engines_byte_identical(self):
        database = build_db(telemetry=full_tracing())
        drive(database, seed=7)
        batched = database.telemetry.export_chrome_json()
        batch.set_batched(False)
        try:
            database = build_db(telemetry=full_tracing())
            drive(database, seed=7)
            reference = database.telemetry.export_chrome_json()
        finally:
            batch.set_batched(True)
        assert batched == reference

    def test_sampling_is_by_txn_id(self):
        database = build_db(telemetry=TelemetryConfig(trace_sample=4))
        drive(database)
        roots = [span for span in database.telemetry.tracer.spans
                 if span.name == "txn"]
        assert roots
        assert all(span.tid % 4 == 0 for span in roots)

    def test_span_tree_shape(self):
        database = build_db(telemetry=full_tracing(),
                            durability=DurabilityConfig(enabled=True,
                                                        mode="group"))
        drive(database)
        spans = database.telemetry.tracer.spans
        names = {span.name for span in spans}
        assert {"txn", "scheduling", "commit", "cc:validate",
                "cc:install", "log:epoch"} <= names
        # Multi-reactor transfers produce sub-calls and future waits.
        assert any(name.startswith("subcall:") for name in names)
        assert any(name.startswith("wait:") for name in names)
        # Group durability defers acks behind the epoch flush.
        assert "durability:ack_wait" in names

    def test_migration_spans(self):
        database = build_db(telemetry=full_tracing())
        database.scheduler.at(
            2_000.0,
            lambda: database.migrate(sb.reactor_name(0), 2))
        drive(database)
        names = {span.name for span in
                 database.telemetry.tracer.spans}
        assert {"migration:drain", "migration:copy_flip"} <= names
        assert database.migration_stats()["completed"] == 1

    def test_replication_spans_and_lag_histogram(self):
        database = build_db(
            telemetry=full_tracing(),
            replication=ReplicationConfig(replicas_per_container=1,
                                          mode="async"))
        drive(database)
        names = {span.name for span in
                 database.telemetry.tracer.spans}
        assert "rep:ship_apply" in names
        summary = database.telemetry.bench_summary()
        assert summary["replication_lag_us"]["count"] > 0

    def test_exported_trace_validates(self):
        database = build_db(telemetry=full_tracing(),
                            durability=DurabilityConfig(enabled=True,
                                                        mode="group"))
        drive(database)
        payload = json.loads(database.telemetry.export_chrome_json())
        assert check_trace.check_payload(payload) == []

    def test_validator_catches_breakage(self):
        database = build_db(telemetry=full_tracing())
        drive(database)
        payload = database.telemetry.export_chrome()
        good = [e for e in payload["traceEvents"]
                if e.get("ph") == "X"]
        # Orphaned parent reference.
        broken = json.loads(json.dumps(payload))
        for event in broken["traceEvents"]:
            if event.get("ph") == "X":
                event["args"]["parent_span_id"] = 10**9
                break
        assert check_trace.check_payload(broken)
        # Unsorted timestamps.
        broken = json.loads(json.dumps(payload))
        events = [e for e in broken["traceEvents"]
                  if e.get("ph") == "X"]
        events[0]["ts"] = events[-1]["ts"] + 1_000.0
        assert check_trace.check_payload(broken)
        # Unknown metric name.
        broken = json.loads(json.dumps(payload))
        broken["metrics"]["bogus_metric_total"] = 1
        assert any("catalog" in problem for problem in
                   check_trace.check_payload(broken))
        assert good  # the untouched export had spans to break

    def test_trace_export_tool_deterministic(self):
        a = trace_export.export_trace(seed=3, measure_us=4_000.0)
        b = trace_export.export_trace(seed=3, measure_us=4_000.0)
        assert a == b
        payload = json.loads(a)
        assert check_trace.check_payload(payload) == []
        assert payload["metadata"]["trace_sample"] == 1


# ----------------------------------------------------------------------
# Disabled / sampled-off paths
# ----------------------------------------------------------------------

class TestDisabledPath:
    def test_no_spans_no_observations(self):
        database = build_db(
            telemetry=TelemetryConfig(enabled=False))
        result = drive(database)
        telemetry = database.telemetry
        assert telemetry.tracer is None
        assert telemetry.bench_summary() == {}
        assert result.telemetry == {}
        assert telemetry.registry.value("txn_commit_latency_us") == 0
        assert telemetry.histogram("txn_commit_latency_us") is None
        assert result.summary.committed > 0

    def test_tracing_off_keeps_metrics(self):
        database = build_db(telemetry=TelemetryConfig(trace_sample=0))
        drive(database)
        telemetry = database.telemetry
        assert telemetry.tracer is None
        assert not telemetry.system_tracing
        summary = telemetry.bench_summary()
        assert summary["commits"] > 0
        assert summary["txn_commit_latency_us"]["count"] == \
            summary["commits"]

    def test_legacy_shapes_survive_disable(self):
        """The legacy surfaces report identical numbers whether
        telemetry is enabled or not (collectors are pure pull)."""
        snapshots = []
        for enabled in (True, False):
            database = build_db(
                telemetry=TelemetryConfig(enabled=enabled),
                durability=DurabilityConfig(enabled=True,
                                            mode="group"),
                replication=ReplicationConfig(
                    replicas_per_container=1, mode="async"))
            drive(database)
            snapshots.append({
                "aborts": database.abort_counts(),
                "versions": database.version_stats(),
                "replication": database.replication_stats(),
                "durability": database.durability_stats(),
            })
        assert snapshots[0] == snapshots[1]
        aborts = snapshots[0]["aborts"]
        assert set(aborts["by_reason"]) == set(ABORT_REASONS)
        assert aborts["validations"] > 0
        versions = snapshots[0]["versions"]
        assert {"live_versions", "versions_created",
                "gc_versions", "read_only_aborts"} <= set(versions)
        durability = snapshots[0]["durability"]
        flusher = durability["flushers"][0]
        assert flusher["fsyncs"] > 0
        assert flusher["records_per_fsync"] > 0
        assert snapshots[0]["replication"]["records_shipped"] > 0


# ----------------------------------------------------------------------
# Bench embedding & reporting
# ----------------------------------------------------------------------

class TestBenchIntegration:
    def test_measurement_carries_summary_and_log_drains(self):
        drain_telemetry_summaries()
        database = build_db()
        result = drive(database)
        assert result.telemetry["commits"] == result.telemetry[
            "txn_commit_latency_us"]["count"]
        drained = drain_telemetry_summaries()
        assert drained == [result.telemetry]
        assert drain_telemetry_summaries() == []

    def test_bench_compare_renders_percentiles(self):
        bench_compare = load_tool("bench_compare")
        payload = {"runs": [], "telemetry": [
            {"commits": 10, "aborts": 1,
             "txn_commit_latency_us": {"count": 10, "p50": 8.0,
                                       "p99": 64.0, "p999": 64.0},
             "txn_abort_latency_us": {"count": 1, "p99": 4.0}},
        ]}
        lines = bench_compare.telemetry_lines("demo", payload)
        assert any("report-only" in line for line in lines)
        assert any("| 0 | 10 | 1 | 8.0 | 64.0 | 64.0 | 4.0 |" == line
                   for line in lines)
        assert bench_compare.telemetry_lines("demo", {"runs": []}) \
            == []


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------

class TestExport:
    def test_chrome_payload_structure(self):
        database = build_db(telemetry=full_tracing())
        drive(database)
        payload = database.telemetry.export_chrome()
        events = payload["traceEvents"]
        metadata = [e for e in events if e["ph"] == "M"]
        assert any(m["args"]["name"] == "transactions"
                   for m in metadata)
        xs = [e for e in events if e["ph"] == "X"]
        assert xs == sorted(xs, key=lambda e: e["ts"])
        assert payload["metadata"]["dropped_spans"] == 0
        assert payload["displayTimeUnit"] == "ms"
        assert "txn_commits_total" in payload["metrics"]

    def test_prometheus_from_facade(self):
        database = build_db()
        drive(database)
        text = database.telemetry.render_prometheus()
        assert "# TYPE txn_commit_latency_us summary" in text
        assert "scheduler_events_dispatched_total" in text
