"""TPC-C consistency conditions under concurrent execution.

The strongest TPC-C-specific integration check: after running the
standard mix concurrently under every architecture, all spec
consistency conditions (C1-C5, see
:mod:`repro.workloads.tpcc.consistency`) must hold — any
serializability or atomicity bug in the engine breaks at least one.
"""

import pytest

from repro.bench.harness import run_measurement
from repro.experiments.common import tpcc_database
from repro.workloads import tpcc
from repro.workloads.tpcc.consistency import (
    ConsistencyViolation,
    check_database,
)

W = 2
SCALE = tpcc.TpccScale(districts=3, customers_per_district=20,
                       items=50, orders_per_district=10, last_names=5)


def test_freshly_loaded_database_is_consistent():
    database = tpcc_database("shared-nothing-async", W, scale=SCALE)
    check_database(database, W)


@pytest.mark.parametrize("strategy", [
    "shared-nothing-async",
    "shared-everything-with-affinity",
    "shared-everything-without-affinity",
])
def test_concurrent_mix_preserves_consistency(strategy):
    database = tpcc_database(strategy, W, scale=SCALE)
    workload = tpcc.TpccWorkload(n_warehouses=W, scale=SCALE)
    result = run_measurement(database, 4, workload.factory_for,
                             warmup_us=2_000.0, measure_us=40_000.0,
                             n_epochs=4)
    assert result.summary.committed > 100
    check_database(database, W)


def test_sync_remote_formulation_preserves_consistency():
    database = tpcc_database("shared-nothing-sync", W, scale=SCALE)
    workload = tpcc.TpccWorkload(n_warehouses=W, scale=SCALE,
                                 sync_remote=True,
                                 remote_item_prob=0.5)
    run_measurement(database, 4, workload.factory_for,
                    warmup_us=2_000.0, measure_us=30_000.0,
                    n_epochs=3)
    check_database(database, W)


def test_checker_catches_corruption():
    database = tpcc_database("shared-nothing-async", W, scale=SCALE)
    # Corrupt: bump a district counter without creating the order.
    table = database.reactor(tpcc.warehouse_name(1)).table("district")
    record = table.get_record((1,))
    table.install_update(record,
                         dict(record.value,
                              d_next_o_id=record.value["d_next_o_id"]
                              + 5),
                         tid=999)
    with pytest.raises(ConsistencyViolation):
        check_database(database, W)


def test_checker_catches_lost_order_line():
    database = tpcc_database("shared-nothing-async", W, scale=SCALE)
    name = tpcc.warehouse_name(1)
    table = database.reactor(name).table("order_line")
    line = database.table_rows(name, "order_line")[0]
    record = table.get_record(
        (line["ol_d_id"], line["ol_o_id"], line["ol_number"]))
    table.install_delete(record, tid=999)
    with pytest.raises(ConsistencyViolation):
        check_database(database, W)
