"""WAL edge cases: torn tails, truncation, durability config."""

import json

import pytest

from repro import DurabilityConfig
from repro.core.database import ReactorDatabase
from repro.core.deployment import DeploymentConfig, shared_nothing
from repro.durability import (
    enable_durability,
    recover,
    take_checkpoint,
)
from repro.durability.wal import RedoLog
from repro.errors import DeploymentError, TransactionAbort
from repro.workloads import smallbank as sb

N = 6


def fresh_bank(durability=None):
    database = ReactorDatabase(
        shared_nothing(3, durability=durability),
        sb.declarations(N))
    sb.load(database, N)
    return database


def run_transfers(database, count=12, seed=4):
    import random

    rng = random.Random(seed)
    for i in range(count):
        variant = sb.VARIANTS[i % len(sb.VARIANTS)]
        src = sb.reactor_name(rng.randrange(N))
        dst = sb.reactor_name(
            (int(src[4:]) + 1 + rng.randrange(N - 1)) % N)
        reactor, proc, args = sb.multi_transfer_spec(
            variant, src, [dst], 2.0)
        try:
            database.run(reactor, proc, *args)
        except TransactionAbort:
            pass


def state_of(database):
    return {
        (name, table): database.table_rows(name, table)
        for name in database.reactor_names()
        for table in ("savings", "checking")
    }


def serialized_log_with_records(min_records=3):
    database = fresh_bank()
    manager = enable_durability(database)
    run_transfers(database)
    log = max(manager.logs.values(), key=len)
    assert len(log) >= min_records
    return database, manager, log


class TestTornTail:
    def test_torn_last_line_detected_and_dropped(self):
        __, ___, log = serialized_log_with_records()
        text = log.dump_json_lines()
        torn = text[:-25]  # crash mid-write of the final record
        restored = RedoLog.load_json_lines(log.container_id, torn)
        assert restored.torn_tail
        assert restored.records == log.records[:-1]

    def test_clean_log_has_no_torn_tail(self):
        __, ___, log = serialized_log_with_records()
        restored = RedoLog.load_json_lines(
            log.container_id, log.dump_json_lines())
        assert not restored.torn_tail
        assert restored.records == log.records

    def test_replay_stops_at_last_complete_record(self):
        """Recovery from a torn log equals recovery from the log
        explicitly cut at the last complete record."""
        database, manager, log = serialized_log_with_records()
        text = log.dump_json_lines()
        torn = RedoLog.load_json_lines(log.container_id, text[:-10])
        cut = RedoLog(log.container_id)
        cut.records = log.records[:-1]
        base = take_checkpoint(fresh_bank())
        others = [lg for cid, lg in manager.logs.items()
                  if cid != log.container_id]
        from_torn = recover(shared_nothing(3), sb.declarations(N),
                            base, [torn, *others])
        from_cut = recover(shared_nothing(3), sb.declarations(N),
                           base, [cut, *others])
        assert state_of(from_torn) == state_of(from_cut)

    def test_mid_log_corruption_raises(self):
        __, ___, log = serialized_log_with_records()
        lines = log.dump_json_lines().splitlines()
        lines[0] = lines[0][:-8]  # not the tail: real corruption
        with pytest.raises(ValueError, match="corrupt redo record"):
            RedoLog.load_json_lines(log.container_id,
                                    "\n".join(lines))

    def test_torn_json_variants(self):
        """Half a JSON object, a wrong shape, and a non-JSON line all
        count as torn when they end the file."""
        __, ___, log = serialized_log_with_records()
        good = log.dump_json_lines()
        for tail in ('{"tid": 7, "entr',
                     '{"unexpected": "shape"}',
                     "garbage###"):
            restored = RedoLog.load_json_lines(
                log.container_id, good + "\n" + tail)
            assert restored.torn_tail
            assert restored.records == log.records


class TestTruncationEquivalence:
    def test_checkpoint_truncation_equals_full_log_replay(self):
        """Recovery after checkpoint+truncation reaches exactly the
        state full-log replay reaches."""
        truncated = fresh_bank()
        mgr_t = enable_durability(truncated)
        run_transfers(truncated, count=8, seed=1)
        checkpoint = mgr_t.checkpoint_and_truncate()
        run_transfers(truncated, count=8, seed=2)

        full = fresh_bank()
        mgr_f = enable_durability(full)
        run_transfers(full, count=8, seed=1)
        run_transfers(full, count=8, seed=2)

        from_truncated = recover(
            shared_nothing(3), sb.declarations(N), checkpoint,
            mgr_t.logs.values())
        from_full = recover(
            shared_nothing(3), sb.declarations(N),
            take_checkpoint(fresh_bank()), mgr_f.logs.values())
        assert state_of(from_truncated) == state_of(from_full)
        assert state_of(from_truncated) == state_of(truncated)

    def test_truncated_through_watermark_recorded(self):
        database = fresh_bank()
        manager = enable_durability(database)
        run_transfers(database, count=8)
        before = {cid: len(log)
                  for cid, log in manager.logs.items()}
        manager.checkpoint_and_truncate()
        for cid, log in manager.logs.items():
            if before[cid]:
                assert log.truncated_through > 0
                assert len(log) == 0


class TestDurabilityConfigRoundTrip:
    @pytest.mark.parametrize("mode", ("sync", "group", "async"))
    def test_round_trips_through_deployment(self, mode):
        deployment = shared_nothing(
            3, durability=DurabilityConfig(enabled=True, mode=mode))
        data = deployment.to_dict()
        assert data["durability"] == {"enabled": True,
                                      "durability_mode": mode}
        restored = DeploymentConfig.from_dict(
            json.loads(deployment.to_json()))
        assert restored.durability == deployment.durability
        database = ReactorDatabase(restored, sb.declarations(N))
        assert database.durability is not None
        assert database.durability.mode == mode

    def test_disabled_round_trip_attaches_nothing(self):
        deployment = shared_nothing(3)
        restored = DeploymentConfig.from_json(deployment.to_json())
        assert not restored.durability.enabled
        database = ReactorDatabase(restored, sb.declarations(N))
        assert database.durability is None

    def test_unknown_durability_key_rejected(self):
        data = shared_nothing(2).to_dict()
        data["durability"] = {"enabled": True, "fsync": "always"}
        with pytest.raises(DeploymentError, match="unknown durability"):
            DeploymentConfig.from_dict(data)

    def test_unknown_mode_rejected(self):
        with pytest.raises(DeploymentError, match="durability_mode"):
            DurabilityConfig(enabled=True, mode="eventually")

    def test_config_wins_over_implicit_replication_default(self):
        from repro.replication import ReplicationConfig

        deployment = shared_nothing(
            2,
            replication=ReplicationConfig(replicas_per_container=1,
                                          mode="sync"),
            durability=DurabilityConfig(enabled=True, mode="group"))
        database = ReactorDatabase(deployment, sb.declarations(N))
        # Replication's implicit enable_durability must not downgrade
        # the configured group mode to the legacy async default.
        assert database.durability.mode == "group"
