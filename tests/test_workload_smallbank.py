"""Smallbank workload tests: semantics of every transaction and the
money-conservation invariant across all multi-transfer formulations."""

import pytest

from repro.core.database import ReactorDatabase
from repro.core.deployment import RangePlacement, shared_nothing
from repro.errors import TransactionAbort
from repro.workloads import smallbank as sb

N = 12


@pytest.fixture
def bank():
    deployment = shared_nothing(3, placement=RangePlacement(4))
    database = ReactorDatabase(deployment, sb.declarations(N))
    sb.load(database, N)
    return database


class TestClassicTransactions:
    def test_balance(self, bank):
        assert bank.run(sb.reactor_name(0), "balance") == \
            2 * sb.INITIAL_BALANCE

    def test_deposit_checking(self, bank):
        bank.run(sb.reactor_name(0), "deposit_checking", 50.0)
        assert bank.run(sb.reactor_name(0), "balance") == \
            2 * sb.INITIAL_BALANCE + 50.0

    def test_negative_deposit_aborts(self, bank):
        with pytest.raises(TransactionAbort):
            bank.run(sb.reactor_name(0), "deposit_checking", -1.0)

    def test_transact_saving_overdraft_aborts(self, bank):
        with pytest.raises(TransactionAbort):
            bank.run(sb.reactor_name(0), "transact_saving",
                     -sb.INITIAL_BALANCE - 1.0)

    def test_write_check_overdraft_penalty(self, bank):
        name = sb.reactor_name(0)
        bank.run(name, "write_check", 2 * sb.INITIAL_BALANCE + 10.0)
        rows = bank.table_rows(name, "checking")
        expected = sb.INITIAL_BALANCE - (2 * sb.INITIAL_BALANCE + 10.0) \
            - 1.0
        assert rows[0]["balance"] == pytest.approx(expected)

    def test_write_check_no_penalty_when_funded(self, bank):
        name = sb.reactor_name(0)
        bank.run(name, "write_check", 100.0)
        rows = bank.table_rows(name, "checking")
        assert rows[0]["balance"] == \
            pytest.approx(sb.INITIAL_BALANCE - 100.0)

    def test_amalgamate(self, bank):
        src, dst = sb.reactor_name(0), sb.reactor_name(8)
        bank.run(src, "amalgamate", dst)
        assert bank.run(src, "balance") == 0.0
        assert bank.run(dst, "balance") == 4 * sb.INITIAL_BALANCE

    def test_transfer(self, bank):
        src, dst = sb.reactor_name(0), sb.reactor_name(8)
        bank.run(src, "transfer", src, dst, 25.0)
        savings_src = bank.table_rows(src, "savings")[0]["balance"]
        savings_dst = bank.table_rows(dst, "savings")[0]["balance"]
        assert savings_src == sb.INITIAL_BALANCE - 25.0
        assert savings_dst == sb.INITIAL_BALANCE + 25.0

    def test_transfer_rejects_non_positive(self, bank):
        with pytest.raises(TransactionAbort):
            bank.run(sb.reactor_name(0), "transfer",
                     sb.reactor_name(0), sb.reactor_name(8), 0.0)


class TestMultiTransfer:
    @pytest.mark.parametrize("variant", sb.VARIANTS)
    def test_variant_effects(self, bank, variant):
        src = sb.reactor_name(0)
        dsts = [sb.reactor_name(i) for i in (4, 8, 9)]
        reactor, proc, args = sb.multi_transfer_spec(
            variant, src, dsts, 10.0)
        bank.run(reactor, proc, *args)
        assert bank.table_rows(src, "savings")[0]["balance"] == \
            pytest.approx(sb.INITIAL_BALANCE - 30.0)
        for dst in dsts:
            assert bank.table_rows(dst, "savings")[0]["balance"] == \
                pytest.approx(sb.INITIAL_BALANCE + 10.0)
        assert sb.total_money(bank, N) == \
            pytest.approx(N * 2 * sb.INITIAL_BALANCE)

    @pytest.mark.parametrize("variant", sb.VARIANTS)
    def test_overdraft_aborts_whole_group(self, bank, variant):
        src = sb.reactor_name(0)
        dsts = [sb.reactor_name(i) for i in (4, 8, 9)]
        reactor, proc, args = sb.multi_transfer_spec(
            variant, src, dsts, sb.INITIAL_BALANCE)  # 3x overdraws
        with pytest.raises(TransactionAbort):
            bank.run(reactor, proc, *args)
        # Atomicity: no partial credits survive.
        for dst in dsts:
            assert bank.table_rows(dst, "savings")[0]["balance"] == \
                sb.INITIAL_BALANCE
        assert sb.total_money(bank, N) == \
            pytest.approx(N * 2 * sb.INITIAL_BALANCE)

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            sb.multi_transfer_spec("psychic", "a", ["b"], 1.0)

    def test_latency_ordering_of_variants(self):
        """The Figure 5 headline: more asynchronicity, less latency."""
        latencies = {}
        for variant in sb.VARIANTS:
            deployment = shared_nothing(3, placement=RangePlacement(4))
            database = ReactorDatabase(deployment, sb.declarations(N))
            sb.load(database, N)
            src = sb.reactor_name(0)
            dsts = [sb.reactor_name(i) for i in (4, 5, 8, 9)]
            reactor, proc, args = sb.multi_transfer_spec(
                variant, src, dsts, 1.0)
            start = database.scheduler.now
            database.run(reactor, proc, *args)
            latencies[variant] = database.scheduler.now - start
        assert latencies["fully-sync"] > latencies["partially-async"]
        assert latencies["partially-async"] > latencies["fully-async"]
        assert latencies["fully-async"] > latencies["opt"]
