"""Standard Smallbank mix driver tests (closed-loop integration)."""

import random

import pytest

from repro.bench.harness import run_measurement
from repro.core.database import ReactorDatabase
from repro.core.deployment import (
    shared_everything_with_affinity,
    shared_nothing,
)
from repro.workloads import smallbank as sb

N = 12


def fresh(deployment=None):
    database = ReactorDatabase(deployment or shared_nothing(3),
                               sb.declarations(N))
    sb.load(database, N)
    return database


class FakeWorker:
    def __init__(self, seed=3):
        self.rng = random.Random(seed)
        self.issued = 0


class TestGenerator:
    def test_specs_reference_known_procedures(self):
        workload = sb.SmallbankWorkload(N)
        worker = FakeWorker()
        for __ in range(200):
            reactor, proc, args = workload.next_txn(worker)
            assert proc in sb.CUSTOMER.procedures
            assert reactor.startswith("cust")

    def test_mix_covers_all_transactions(self):
        workload = sb.SmallbankWorkload(N)
        worker = FakeWorker()
        seen = {workload.next_txn(worker)[1] for __ in range(400)}
        assert seen == set(sb.STANDARD_MIX)

    def test_two_customer_txns_use_distinct_accounts(self):
        workload = sb.SmallbankWorkload(N)
        worker = FakeWorker()
        for __ in range(200):
            reactor, proc, args = workload.next_txn(worker)
            if proc == "amalgamate":
                assert args[0] != reactor
            if proc == "transfer":
                assert args[1] != args[0]

    def test_hotspot_concentrates_accesses(self):
        hot = sb.SmallbankWorkload(100, hotspot_fraction=0.9)
        cold = sb.SmallbankWorkload(100, hotspot_fraction=0.0)

        def head_share(workload):
            worker = FakeWorker()
            hits = 0
            for __ in range(500):
                reactor, __p, __a = workload.next_txn(worker)
                if int(reactor[4:]) < 10:
                    hits += 1
            return hits / 500

        assert head_share(hot) > head_share(cold) + 0.3

    def test_needs_two_customers(self):
        with pytest.raises(ValueError):
            sb.SmallbankWorkload(1)


class TestClosedLoopIntegration:
    @pytest.mark.parametrize("deployment_fn", [
        lambda: shared_nothing(3, mpl=4),
        lambda: shared_everything_with_affinity(3),
    ])
    def test_mix_conserves_money_under_load(self, deployment_fn):
        database = fresh(deployment_fn())
        workload = sb.SmallbankWorkload(N)
        result = run_measurement(database, 3, workload.factory_for,
                                 warmup_us=2_000.0,
                                 measure_us=30_000.0, n_epochs=3)
        assert result.summary.committed > 50
        # write_check/deposit/transact change totals; only transfer
        # and amalgamate must conserve. Run a conservation-only mix:
        database2 = fresh(deployment_fn())
        conserving = sb.SmallbankWorkload(
            N, mix=("transfer", "amalgamate", "balance"))
        run_measurement(database2, 3, conserving.factory_for,
                        warmup_us=2_000.0, measure_us=30_000.0,
                        n_epochs=3)
        assert sb.total_money(database2, N) == pytest.approx(
            N * 2 * sb.INITIAL_BALANCE)

    def test_hotspot_raises_aborts_under_shared_nothing(self):
        database = fresh(shared_nothing(3, mpl=4))
        uniform = sb.SmallbankWorkload(N, mix=("transfer",))
        base = run_measurement(database, 4, uniform.factory_for,
                               warmup_us=2_000.0,
                               measure_us=30_000.0, n_epochs=3)
        database2 = fresh(shared_nothing(3, mpl=4))
        hot = sb.SmallbankWorkload(N, mix=("transfer",),
                                   hotspot_fraction=0.95)
        contended = run_measurement(database2, 4, hot.factory_for,
                                    warmup_us=2_000.0,
                                    measure_us=30_000.0, n_epochs=3)
        assert contended.summary.abort_rate >= \
            base.summary.abort_rate
