"""TPC-C workload tests: loader shape, transaction semantics,
consistency invariants, input generation."""

import random

import pytest

from repro.core.database import ReactorDatabase
from repro.core.deployment import (
    shared_everything_with_affinity,
    shared_nothing,
)
from repro.errors import TransactionAbort
from repro.sim.machine import OPTERON_6274
from repro.workloads import tpcc

W = 2
SCALE = tpcc.TpccScale(districts=3, customers_per_district=20,
                       items=50, orders_per_district=10, last_names=5)


@pytest.fixture
def db():
    database = ReactorDatabase(
        shared_nothing(W, machine=OPTERON_6274),
        tpcc.declarations(W))
    tpcc.load(database, W, SCALE)
    return database


def wh(i):
    return tpcc.warehouse_name(i)


class TestLoader:
    def test_cardinalities(self, db):
        assert len(db.table_rows(wh(1), "warehouse")) == 1
        assert len(db.table_rows(wh(1), "district")) == SCALE.districts
        assert len(db.table_rows(wh(1), "customer")) == \
            SCALE.districts * SCALE.customers_per_district
        assert len(db.table_rows(wh(1), "item")) == SCALE.items
        assert len(db.table_rows(wh(1), "stock")) == SCALE.items
        assert len(db.table_rows(wh(1), "orders")) == \
            SCALE.districts * SCALE.orders_per_district

    def test_undelivered_orders_have_new_order_rows(self, db):
        new_orders = db.table_rows(wh(1), "new_order")
        orders = {(o["o_d_id"], o["o_id"]): o
                  for o in db.table_rows(wh(1), "orders")}
        assert new_orders
        for row in new_orders:
            order = orders[(row["no_d_id"], row["no_o_id"])]
            assert order["o_carrier_id"] is None

    def test_district_counters_consistent(self, db):
        for district in db.table_rows(wh(1), "district"):
            assert district["d_next_o_id"] == \
                SCALE.orders_per_district + 1

    def test_last_names_bucketed(self, db):
        lasts = {c["c_last"] for c in db.table_rows(wh(1), "customer")}
        assert len(lasts) == SCALE.last_names

    def test_loading_is_deterministic(self):
        db_a = ReactorDatabase(shared_nothing(W, machine=OPTERON_6274),
                               tpcc.declarations(W))
        tpcc.load(db_a, W, SCALE, seed=3)
        db_b = ReactorDatabase(shared_nothing(W, machine=OPTERON_6274),
                               tpcc.declarations(W))
        tpcc.load(db_b, W, SCALE, seed=3)
        assert db_a.table_rows(wh(1), "stock") == \
            db_b.table_rows(wh(1), "stock")


class TestNewOrder:
    def _items(self, local=2, remote=0):
        items = [(wh(1), i + 1, 2) for i in range(local)]
        items += [(wh(2), i + 1, 3) for i in range(remote)]
        return items

    def test_local_new_order(self, db):
        result = db.run(wh(1), "new_order", 1, 1, 1, self._items(3))
        assert result["o_id"] == SCALE.orders_per_district + 1
        assert result["total"] > 0

    def test_district_counter_advances(self, db):
        db.run(wh(1), "new_order", 1, 1, 1, self._items(2))
        district = [d for d in db.table_rows(wh(1), "district")
                    if d["d_id"] == 1][0]
        assert district["d_next_o_id"] == SCALE.orders_per_district + 2

    def test_order_lines_written(self, db):
        result = db.run(wh(1), "new_order", 1, 1, 1,
                        self._items(2, remote=2))
        lines = [l for l in db.table_rows(wh(1), "order_line")
                 if l["ol_o_id"] == result["o_id"] and
                 l["ol_d_id"] == 1]
        assert len(lines) == 4
        supply = sorted(l["ol_supply_w_id"] for l in lines)
        assert supply == [1, 1, 2, 2]

    def test_remote_stock_updated(self, db):
        before = {s["s_i_id"]: s for s in db.table_rows(wh(2), "stock")}
        db.run(wh(1), "new_order", 1, 1, 1, self._items(1, remote=2))
        after = {s["s_i_id"]: s for s in db.table_rows(wh(2), "stock")}
        changed = [i for i in after
                   if after[i]["s_ytd"] != before[i]["s_ytd"]]
        assert len(changed) == 2
        for i in changed:
            assert after[i]["s_remote_cnt"] == \
                before[i]["s_remote_cnt"] + 1

    def test_local_stock_update_not_remote_counted(self, db):
        db.run(wh(1), "new_order", 1, 1, 1, self._items(2))
        stock = {s["s_i_id"]: s for s in db.table_rows(wh(1), "stock")}
        assert stock[1]["s_remote_cnt"] == 0
        assert stock[1]["s_order_cnt"] == 1

    def test_stock_wraps_below_threshold(self, db):
        # Drain stock down with repeated orders; quantity must stay
        # positive via the +91 wrap rule.
        for __ in range(12):
            db.run(wh(1), "new_order", 1, 1, 1, [(wh(1), 1, 9)])
        stock = [s for s in db.table_rows(wh(1), "stock")
                 if s["s_i_id"] == 1][0]
        assert stock["s_quantity"] >= 10 - 9

    def test_invalid_item_aborts_atomically(self, db):
        items = self._items(2) + [(wh(1), 9999, 1)]
        with pytest.raises(TransactionAbort):
            db.run(wh(1), "new_order", 1, 1, 1, items)
        district = [d for d in db.table_rows(wh(1), "district")
                    if d["d_id"] == 1][0]
        assert district["d_next_o_id"] == SCALE.orders_per_district + 1

    def test_sync_remote_variant_same_effects(self, db):
        result = db.run(wh(1), "new_order", 1, 1, 1,
                        self._items(1, remote=1), True)
        assert result["total"] > 0


class TestPayment:
    def test_local_payment_by_id(self, db):
        db.run(wh(1), "payment", 1, 2, 100.0, wh(1), 2, 5, None)
        customer = [c for c in db.table_rows(wh(1), "customer")
                    if c["c_d_id"] == 2 and c["c_id"] == 5][0]
        assert customer["c_balance"] == -110.0
        assert customer["c_payment_cnt"] == 2
        warehouse = db.table_rows(wh(1), "warehouse")[0]
        assert warehouse["w_ytd"] == 300_100.0

    def test_remote_payment(self, db):
        db.run(wh(1), "payment", 1, 1, 50.0, wh(2), 3, 7, None)
        customer = [c for c in db.table_rows(wh(2), "customer")
                    if c["c_d_id"] == 3 and c["c_id"] == 7][0]
        assert customer["c_balance"] == -60.0
        # History row lands at the home warehouse.
        history = db.table_rows(wh(1), "history")
        assert len(history) == 1
        assert history[0]["h_c_w_id"] == 2

    def test_payment_by_last_name_picks_middle(self, db):
        last = db.table_rows(wh(1), "customer")[0]["c_last"]
        paid = db.run(wh(1), "payment", 1, 1, 10.0, wh(1), 1, None,
                      last)
        matching = sorted(
            (c for c in db.table_rows(wh(1), "customer")
             if c["c_d_id"] == 1 and c["c_last"] == last),
            key=lambda c: c["c_first"])
        assert paid == matching[len(matching) // 2]["c_id"]

    def test_unknown_last_name_aborts(self, db):
        with pytest.raises(TransactionAbort):
            db.run(wh(1), "payment", 1, 1, 10.0, wh(1), 1, None,
                   "NOSUCHNAME")

    def test_bad_credit_customer_accumulates_data(self, db):
        bad = [c for c in db.table_rows(wh(1), "customer")
               if c["c_credit"] == "BC"]
        if not bad:
            pytest.skip("no BC customer at this seed")
        customer = bad[0]
        db.run(wh(1), "payment", 1, 1, 42.0, wh(1),
               customer["c_d_id"], customer["c_id"], None)
        updated = [c for c in db.table_rows(wh(1), "customer")
                   if c["c_id"] == customer["c_id"] and
                   c["c_d_id"] == customer["c_d_id"]][0]
        assert updated["c_data"].startswith(f"{customer['c_id']},")


class TestReadOnlyAndDelivery:
    def test_order_status_by_id(self, db):
        result = db.run(wh(1), "order_status", 1, 1, None)
        assert result["c_id"] == 1
        if result["order"] is not None:
            assert result["lines"] >= 5

    def test_order_status_returns_latest_order(self, db):
        db.run(wh(1), "new_order", 1, 1, 1, [(wh(1), 1, 1)])
        result = db.run(wh(1), "order_status", 1, 1, None)
        assert result["order"] == SCALE.orders_per_district + 1

    def test_delivery_clears_oldest_new_orders(self, db):
        before = db.table_rows(wh(1), "new_order")
        delivered = db.run(wh(1), "delivery", 1, 5)
        after = db.table_rows(wh(1), "new_order")
        assert len(after) == len(before) - len(delivered)
        oldest = min(r["no_o_id"] for r in before)
        assert any(o_id == oldest for __, o_id in delivered)

    def test_delivery_updates_customer_balance(self, db):
        delivered = db.run(wh(1), "delivery", 1, 5)
        d_id, o_id = delivered[0]
        order = [o for o in db.table_rows(wh(1), "orders")
                 if o["o_d_id"] == d_id and o["o_id"] == o_id][0]
        assert order["o_carrier_id"] == 5
        customer = [c for c in db.table_rows(wh(1), "customer")
                    if c["c_d_id"] == d_id and
                    c["c_id"] == order["o_c_id"]][0]
        assert customer["c_delivery_cnt"] == 1

    def test_stock_level_counts_low_stock(self, db):
        count = db.run(wh(1), "stock_level", 1, 1000)
        assert count > 0  # threshold 1000 > all quantities
        assert db.run(wh(1), "stock_level", 1, 0) == 0


class TestInputGeneration:
    def test_nurand_in_range(self):
        rng = random.Random(1)
        for __ in range(500):
            value = tpcc.nurand(rng, 255, 1, 100, 37)
            assert 1 <= value <= 100

    def test_mix_proportions(self):
        workload = tpcc.TpccWorkload(n_warehouses=2, scale=SCALE)

        class FakeWorker:
            rng = random.Random(3)
            issued = 0

        factory = workload.factory_for(0)
        counts: dict = {}
        for __ in range(2000):
            reactor, proc, args = factory(FakeWorker())
            counts[proc] = counts.get(proc, 0) + 1
        assert 0.40 < counts["new_order"] / 2000 < 0.50
        assert 0.38 < counts["payment"] / 2000 < 0.48
        assert counts.get("delivery", 0) > 0

    def test_client_affinity(self):
        workload = tpcc.TpccWorkload(n_warehouses=4, scale=SCALE)
        assert workload.home_warehouse(0) == 1
        assert workload.home_warehouse(3) == 4
        assert workload.home_warehouse(4) == 1  # wraps

    def test_remote_item_probability_extremes(self):
        rng = random.Random(1)
        all_remote = tpcc.TpccWorkload(
            n_warehouses=4, scale=SCALE, remote_item_prob=1.0,
            invalid_item_prob=0.0)
        __, __, args = all_remote.new_order_spec(rng, 1)
        assert all(s != tpcc.warehouse_name(1) for s, __, __q in
                   args[3])
        none_remote = tpcc.TpccWorkload(
            n_warehouses=4, scale=SCALE, remote_item_prob=0.0,
            invalid_item_prob=0.0)
        __, __, args = none_remote.new_order_spec(rng, 1)
        assert all(s == tpcc.warehouse_name(1) for s, __, __q in
                   args[3])

    def test_single_warehouse_has_no_remote(self):
        workload = tpcc.TpccWorkload(n_warehouses=1, scale=SCALE,
                                     remote_item_prob=1.0)
        rng = random.Random(1)
        assert workload._other_warehouse(rng, 1) == 1

    def test_deployment_equivalence_on_new_order(self):
        """Identical new-order effects under S2 and S3 (virtualization)."""
        states = []
        for deployment in (shared_nothing(W, machine=OPTERON_6274),
                           shared_everything_with_affinity(
                               W, machine=OPTERON_6274)):
            database = ReactorDatabase(deployment,
                                       tpcc.declarations(W))
            tpcc.load(database, W, SCALE)
            database.run(wh(1), "new_order", 1, 1, 1,
                         [(wh(1), 1, 2), (wh(2), 3, 4)])
            database.run(wh(1), "payment", 1, 1, 10.0, wh(2), 1, 1,
                         None)
            states.append((
                database.table_rows(wh(1), "order_line"),
                database.table_rows(wh(2), "stock"),
                database.table_rows(wh(2), "customer"),
            ))
        assert states[0] == states[1]
