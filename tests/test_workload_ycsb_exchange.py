"""YCSB and currency-exchange workload tests."""

import random

import pytest

from repro.core.database import ReactorDatabase
from repro.core.deployment import RangePlacement, shared_nothing
from repro.workloads import exchange as ex
from repro.workloads import ycsb


def small_ycsb(n_keys=40, n_containers=4):
    """A scaled-down YCSB database (the real loader builds 10k keys
    per scale factor; tests use a handful)."""
    deployment = shared_nothing(
        n_containers, placement=RangePlacement(n_keys // n_containers))
    names = [(ycsb.key_name(i), ycsb.KEY_REACTOR)
             for i in range(n_keys)]
    database = ReactorDatabase(deployment, names)
    for i in range(n_keys):
        database.load(ycsb.key_name(i), "kv",
                      [{"key": ycsb.key_name(i),
                        "value": "x" * ycsb.RECORD_SIZE}])
    return database


class TestYcsb:
    def test_read_one(self):
        db = small_ycsb()
        value = db.run(ycsb.key_name(0), "read_one")
        assert value == "x" * ycsb.RECORD_SIZE

    def test_update_one_rmw(self):
        db = small_ycsb()
        new_value = db.run(ycsb.key_name(0), "update_one", "Z")
        assert new_value.startswith("Z")
        assert len(new_value) == ycsb.RECORD_SIZE

    def test_multi_update_mixed_local_remote(self):
        db = small_ycsb()
        keys = [ycsb.key_name(i) for i in (0, 1, 15, 25, 35)]
        db.run(ycsb.key_name(0), "multi_update", keys, "Q")
        for key in keys:
            rows = db.table_rows(key, "kv")
            assert rows[0]["value"].startswith("Q")

    def test_multi_update_atomic_on_missing_key(self):
        db = small_ycsb()
        keys = [ycsb.key_name(0), ycsb.key_name(1)]
        table = db.reactor(ycsb.key_name(1)).table("kv")
        table.store.pop((ycsb.key_name(1),))
        from repro.errors import TransactionAbort
        with pytest.raises(TransactionAbort):
            db.run(ycsb.key_name(0), "multi_update", keys, "Q")
        assert not db.table_rows(ycsb.key_name(0), "kv")[0][
            "value"].startswith("Q")

    def test_workload_generator_orders_remote_first(self):
        workload = ycsb.YcsbWorkload(1, theta=0.5, n_containers=4)

        class FakeWorker:
            rng = random.Random(1)
            issued = 0

        initiator, proc, (keys, __) = workload.next_txn(FakeWorker())
        assert proc == "multi_update"
        home = workload.container_of(
            int(initiator.replace("key", "")))
        containers = [workload.container_of(
            int(k.replace("key", ""))) for k in keys]
        seen_local = False
        for c in containers:
            if c == home:
                seen_local = True
            elif seen_local:
                pytest.fail("remote key after local keys")

    def test_high_skew_collapses_to_few_keys(self):
        workload = ycsb.YcsbWorkload(1, theta=5.0, n_containers=4)

        class FakeWorker:
            rng = random.Random(1)
            issued = 0

        sizes = []
        for __ in range(50):
            __, __, (keys, __d) = workload.next_txn(FakeWorker())
            sizes.append(len(keys))
        assert sum(sizes) / len(sizes) < 4  # duplicates collapsed

    def test_low_skew_keeps_ten_distinct_keys(self):
        workload = ycsb.YcsbWorkload(1, theta=0.01, n_containers=4)

        class FakeWorker:
            rng = random.Random(1)
            issued = 0

        __, __, (keys, __d) = workload.next_txn(FakeWorker())
        assert len(keys) == 10


@pytest.fixture
def exchange_db():
    from repro.core.deployment import ExplicitPlacement

    n = 3
    mapping = {ex.EXCHANGE_NAME: 0}
    declarations = [(ex.EXCHANGE_NAME, ex.EXCHANGE)]
    for i in range(n):
        mapping[ex.provider_name(i)] = i % 3
        declarations.append((ex.provider_name(i), ex.PROVIDER))
    deployment = shared_nothing(3,
                                placement=ExplicitPlacement(mapping))
    database = ReactorDatabase(deployment, declarations)
    ex.load_reactor_model(database, n, orders_per_provider=50,
                          window=20)
    return database


class TestExchangeReactorModel:
    def test_auth_pay_inserts_order(self, exchange_db):
        target = ex.provider_name(1)
        before = len(exchange_db.table_rows(target, "orders"))
        exchange_db.run(ex.EXCHANGE_NAME, "auth_pay", target, 7, 25.0,
                        10)
        after = exchange_db.table_rows(target, "orders")
        assert len(after) == before + 1
        newest = max(after, key=lambda r: r["time"])
        assert newest["settled"] == "N"
        assert newest["value"] == 25.0

    def test_auth_pay_updates_all_provider_risks(self, exchange_db):
        exchange_db.run(ex.EXCHANGE_NAME, "auth_pay",
                        ex.provider_name(0), 7, 25.0, 10)
        for i in range(3):
            info = exchange_db.table_rows(ex.provider_name(i),
                                          "provider_info")[0]
            assert info["risk"] > 0.0

    def test_risk_limit_aborts(self, exchange_db):
        # Shrink the global risk limit so the total exceeds it.
        exchange_db.reactor(ex.EXCHANGE_NAME).table(
            "settlement_risk").load_row(
            {"key": "tight", "p_exposure": ex.P_EXPOSURE,
             "g_risk": 0.0})
        # (limits row actually read is "limits"; patch it instead)
        table = exchange_db.reactor(ex.EXCHANGE_NAME).table(
            "settlement_risk")
        record = table.get_record(("limits",))
        table.install_update(record, dict(record.value, g_risk=0.0),
                             tid=99)
        from repro.errors import TransactionAbort
        with pytest.raises(TransactionAbort):
            exchange_db.run(ex.EXCHANGE_NAME, "auth_pay",
                            ex.provider_name(0), 7, 25.0, 10)

    def test_sim_risk_cached_within_window(self, exchange_db):
        # First call recomputes (window loaded stale); widen the
        # window so the second call hits the cache.
        exchange_db.run(ex.EXCHANGE_NAME, "auth_pay",
                        ex.provider_name(0), 7, 25.0, 10)
        for i in range(3):
            table = exchange_db.reactor(
                ex.provider_name(i)).table("provider_info")
            record = table.get_record(("info",))
            table.install_update(
                record, dict(record.value, window=1e18), tid=100)
        infos_before = [
            exchange_db.table_rows(ex.provider_name(i),
                                   "provider_info")[0]["time"]
            for i in range(3)]
        exchange_db.run(ex.EXCHANGE_NAME, "auth_pay",
                        ex.provider_name(1), 7, 25.0, 10)
        infos_after = [
            exchange_db.table_rows(ex.provider_name(i),
                                   "provider_info")[0]["time"]
            for i in range(3)]
        assert infos_before == infos_after  # cache hit: no recompute


class TestExchangeClassic:
    def _db(self, partitioned):
        from repro.core.deployment import (
            ContainerSpec,
            DeploymentConfig,
            ExplicitPlacement,
        )

        n = 3
        if partitioned:
            mapping = {ex.EXCHANGE_NAME: 0}
            declarations = [(ex.EXCHANGE_NAME, ex.CLASSIC_EXCHANGE)]
            for i in range(n):
                mapping[ex.fragment_name(i)] = i % 3
                declarations.append(
                    (ex.fragment_name(i), ex.ORDERS_FRAGMENT))
            deployment = shared_nothing(
                3, placement=ExplicitPlacement(mapping))
        else:
            deployment = DeploymentConfig(
                name="seq", containers=[ContainerSpec()],
                pin_reactors=True)
            declarations = [(ex.EXCHANGE_NAME, ex.CLASSIC_EXCHANGE)]
        database = ReactorDatabase(deployment, declarations)
        ex.load_classic(database, n, partitioned=partitioned,
                        orders_per_provider=50, window=20)
        return database

    def test_sequential_auth_pay(self):
        db = self._db(partitioned=False)
        db.run(ex.EXCHANGE_NAME, "auth_pay_sequential",
               ex.provider_name(0), 7, 30.0, 10)
        orders = db.table_rows(ex.EXCHANGE_NAME, "orders")
        newest = max(orders, key=lambda r: (r["provider"], r["time"]))
        assert any(r["value"] == 30.0 and r["settled"] == "N"
                   for r in orders)
        assert newest is not None

    def test_query_parallel_auth_pay(self):
        db = self._db(partitioned=True)
        db.run(ex.EXCHANGE_NAME, "auth_pay_query_parallel",
               ex.provider_name(1), 7, 30.0, 10)
        frag = ex.fragment_name(1)
        orders = db.table_rows(frag, "orders")
        assert any(r["value"] == 30.0 and r["settled"] == "N"
                   for r in orders)

    def test_formulations_agree_on_risk_outcome(self):
        seq = self._db(partitioned=False)
        par = self._db(partitioned=True)
        seq.run(ex.EXCHANGE_NAME, "auth_pay_sequential",
                ex.provider_name(0), 7, 30.0, 10)
        par.run(ex.EXCHANGE_NAME, "auth_pay_query_parallel",
                ex.provider_name(0), 7, 30.0, 10)
        risks_seq = sorted(r["risk"] for r in
                           seq.table_rows(ex.EXCHANGE_NAME, "provider"))
        risks_par = sorted(r["risk"] for r in
                           par.table_rows(ex.EXCHANGE_NAME, "provider"))
        assert risks_seq == pytest.approx(risks_par)
