"""Direct unit tests for the YCSB and exchange workload modules.

Previously these workloads were exercised only through benchmarks;
here their procedures and input generators are driven directly,
parametrized over cc schemes including ``mvocc``.
"""

from __future__ import annotations

import random

import pytest

from repro.core.database import ReactorDatabase
from repro.core.deployment import (
    ExplicitPlacement,
    RangePlacement,
    shared_nothing,
)
from repro.workloads import exchange as ex
from repro.workloads import ycsb

CC_SCHEMES = ("occ", "mvocc", "2pl_nowait", "2pl_waitdie")

N_KEYS = 12
N_CONTAINERS = 3


class FakeWorker:
    def __init__(self, seed: int = 7) -> None:
        self.rng = random.Random(seed)
        self.issued = 0


def _ycsb_db(scheme: str) -> ReactorDatabase:
    deployment = shared_nothing(
        N_CONTAINERS, cc_scheme=scheme,
        placement=RangePlacement(N_KEYS // N_CONTAINERS))
    decls = [(ycsb.key_name(i), ycsb.KEY_REACTOR)
             for i in range(N_KEYS)]
    database = ReactorDatabase(deployment, decls)
    for i in range(N_KEYS):
        name = ycsb.key_name(i)
        database.load(name, "kv",
                      [{"key": name,
                        "value": "x" * ycsb.RECORD_SIZE}])
    return database


@pytest.mark.parametrize("scheme", CC_SCHEMES)
class TestYcsbProcedures:
    def test_multi_update_applies_to_every_key(self, scheme):
        database = _ycsb_db(scheme)
        keys = [ycsb.key_name(i) for i in (0, 4, 8, 11)]
        database.run(keys[0], "multi_update", keys, "Z")
        for key in keys:
            value = database.table_rows(key, "kv")[0]["value"]
            assert value.startswith("Z")
            assert len(value) == ycsb.RECORD_SIZE

    def test_read_one_is_read_only_and_correct(self, scheme):
        database = _ycsb_db(scheme)
        assert ycsb.KEY_REACTOR.is_read_only("read_one")
        value = database.run(ycsb.key_name(3), "read_one")
        assert value == "x" * ycsb.RECORD_SIZE
        if scheme == "mvocc":
            assert database.version_stats()["snapshot_roots"] == 1

    def test_multi_read_commits_across_containers(self, scheme):
        database = _ycsb_db(scheme)
        assert ycsb.KEY_REACTOR.is_read_only("multi_read")
        keys = [ycsb.key_name(i) for i in (1, 5, 9)]
        database.run(keys[0], "multi_read", keys)
        stats = database.version_stats()
        assert stats["read_only_aborts"] == {}
        if scheme == "mvocc":
            # One snapshot root, sessions in three containers.
            assert stats["snapshot_roots"] == 1
            assert stats["snapshot_reads_served"] == 3

    def test_concurrent_mix_stays_consistent(self, scheme):
        database = _ycsb_db(scheme)
        workload = ycsb.YcsbWorkload(
            1, theta=0.9, n_containers=N_CONTAINERS, n_keys=N_KEYS,
            keys_per_txn=4, read_fraction=0.5)
        worker = FakeWorker()
        outcomes: list = []

        def on_done(root, committed, reason, result):
            outcomes.append(committed)

        for __ in range(40):
            reactor, proc, args = workload.next_txn(worker)
            worker.issued += 1
            database.submit(reactor, proc, *args, on_done=on_done)
        database.scheduler.run()
        assert len(outcomes) == 40
        assert any(outcomes)
        # Committed updates never tore a record.
        for i in range(N_KEYS):
            value = database.table_rows(
                ycsb.key_name(i), "kv")[0]["value"]
            assert len(value) == ycsb.RECORD_SIZE
        if scheme == "mvocc":
            stats = database.version_stats()
            assert stats["read_only_aborts"] == {}
            assert stats["pinned_snapshots"] == 0


class TestYcsbGenerator:
    def test_read_fraction_mixes_multi_read(self):
        workload = ycsb.YcsbWorkload(
            1, theta=0.5, n_containers=N_CONTAINERS, n_keys=N_KEYS,
            read_fraction=0.5)
        worker = FakeWorker()
        procs = set()
        for __ in range(200):
            __, proc, ___ = workload.next_txn(worker)
            worker.issued += 1
            procs.add(proc)
        assert procs == {"multi_read", "multi_update"}

    def test_read_span_overrides_keys_per_txn(self):
        workload = ycsb.YcsbWorkload(
            1, theta=0.0, n_containers=N_CONTAINERS, n_keys=N_KEYS,
            keys_per_txn=3, read_fraction=1.0, read_keys_per_txn=8)
        worker = FakeWorker()
        __, proc, (keys,) = workload.next_txn(worker)
        assert proc == "multi_read"
        assert 3 < len(keys) <= 8  # zipf draws, deduplicated

    def test_zero_read_fraction_is_the_classic_workload(self):
        workload = ycsb.YcsbWorkload(
            1, theta=0.5, n_containers=N_CONTAINERS, n_keys=N_KEYS)
        worker = FakeWorker()
        for __ in range(50):
            __, proc, ___ = workload.next_txn(worker)
            worker.issued += 1
            assert proc == "multi_update"


def _exchange_reactor_db(scheme: str) -> ReactorDatabase:
    n = 3
    mapping = {ex.EXCHANGE_NAME: 0}
    declarations = [(ex.EXCHANGE_NAME, ex.EXCHANGE)]
    for i in range(n):
        mapping[ex.provider_name(i)] = i % 3
        declarations.append((ex.provider_name(i), ex.PROVIDER))
    database = ReactorDatabase(
        shared_nothing(3, cc_scheme=scheme,
                       placement=ExplicitPlacement(mapping)),
        declarations)
    ex.load_reactor_model(database, n, orders_per_provider=40,
                          window=15)
    return database


def _exchange_classic_db(scheme: str,
                         partitioned: bool) -> ReactorDatabase:
    n = 3
    if partitioned:
        mapping = {ex.EXCHANGE_NAME: 0}
        declarations = [(ex.EXCHANGE_NAME, ex.CLASSIC_EXCHANGE)]
        for i in range(n):
            mapping[ex.fragment_name(i)] = i % 3
            declarations.append(
                (ex.fragment_name(i), ex.ORDERS_FRAGMENT))
        deployment = shared_nothing(
            3, cc_scheme=scheme, placement=ExplicitPlacement(mapping))
    else:
        deployment = shared_nothing(1, cc_scheme=scheme)
        declarations = [(ex.EXCHANGE_NAME, ex.CLASSIC_EXCHANGE)]
    database = ReactorDatabase(deployment, declarations)
    ex.load_classic(database, n, partitioned=partitioned,
                    orders_per_provider=40, window=15)
    return database


@pytest.mark.parametrize("scheme", CC_SCHEMES)
class TestExchangeAcrossSchemes:
    def test_reactor_model_auth_pay(self, scheme):
        database = _exchange_reactor_db(scheme)
        target = ex.provider_name(2)
        before = len(database.table_rows(target, "orders"))
        database.run(ex.EXCHANGE_NAME, "auth_pay", target, 11, 20.0, 5)
        after = database.table_rows(target, "orders")
        assert len(after) == before + 1
        # Every provider's risk was recomputed (cache windows load 0).
        for i in range(3):
            info = database.table_rows(ex.provider_name(i),
                                       "provider_info")[0]
            assert info["risk"] > 0.0

    def test_classic_formulations_agree(self, scheme):
        seq = _exchange_classic_db(scheme, partitioned=False)
        par = _exchange_classic_db(scheme, partitioned=True)
        seq.run(ex.EXCHANGE_NAME, "auth_pay_sequential",
                ex.provider_name(0), 11, 20.0, 5)
        par.run(ex.EXCHANGE_NAME, "auth_pay_query_parallel",
                ex.provider_name(0), 11, 20.0, 5)
        seq_providers = seq.table_rows(ex.EXCHANGE_NAME, "provider")
        par_providers = par.table_rows(ex.EXCHANGE_NAME, "provider")
        assert [p["risk"] for p in seq_providers] == \
            [p["risk"] for p in par_providers]
        # The appended order lands at next_time == 40 in both.
        seq_orders = [r for r in seq.table_rows(ex.EXCHANGE_NAME,
                                                "orders")
                      if r["time"] == 40 and r["value"] == 20.0]
        par_orders = [r for r in par.table_rows(ex.fragment_name(0),
                                                "orders")
                      if r["time"] == 40 and r["value"] == 20.0]
        assert len(seq_orders) == len(par_orders) == 1

    def test_provider_exposure_abort_propagates(self, scheme):
        database = _exchange_reactor_db(scheme)
        # Choke the per-provider exposure limit: calc_risk aborts.
        table = database.reactor(ex.EXCHANGE_NAME).table(
            "settlement_risk")
        record = table.get_record(("limits",))
        table.install_update(
            record, dict(record.value, p_exposure=0.0), tid=500)
        from repro.errors import TransactionAbort

        with pytest.raises(TransactionAbort, match="exposure"):
            database.run(ex.EXCHANGE_NAME, "auth_pay",
                         ex.provider_name(0), 11, 20.0, 5)
