"""YCSB workload-driver integration: closed-loop skew behavior."""

from repro.bench.harness import run_measurement
from repro.core.database import ReactorDatabase
from repro.core.deployment import RangePlacement, shared_nothing
from repro.workloads import ycsb


def tiny_ycsb(n_keys=80, n_containers=4):
    deployment = shared_nothing(
        n_containers, placement=RangePlacement(n_keys // n_containers))
    database = ReactorDatabase(
        deployment,
        [(ycsb.key_name(i), ycsb.KEY_REACTOR) for i in range(n_keys)])
    for i in range(n_keys):
        database.load(ycsb.key_name(i), "kv",
                      [{"key": ycsb.key_name(i),
                        "value": "x" * ycsb.RECORD_SIZE}])
    return database


def small_workload(n_keys, theta, n_containers):
    return ycsb.YcsbWorkload(0, theta, n_containers, n_keys=n_keys)


def test_uniform_skew_executes_under_load():
    database = tiny_ycsb()
    workload = small_workload(80, theta=0.01, n_containers=4)
    result = run_measurement(database, 2, workload.factory_for,
                             warmup_us=1_000.0, measure_us=15_000.0,
                             n_epochs=3)
    assert result.summary.committed > 20
    # Low skew: transactions span several containers.
    sample = result.raw_stats[-1]
    assert sample.containers >= 2


def test_extreme_skew_reduces_span_and_latency():
    latencies = {}
    spans = {}
    for theta in (0.01, 5.0):
        database = tiny_ycsb()
        workload = small_workload(80, theta=theta, n_containers=4)
        result = run_measurement(database, 1, workload.factory_for,
                                 warmup_us=1_000.0,
                                 measure_us=15_000.0, n_epochs=3)
        latencies[theta] = result.summary.latency_us
        committed = [s for s in result.raw_stats if s.committed]
        spans[theta] = sum(s.containers for s in committed) / \
            len(committed)
    # The Appendix C effect: skew localizes work and lowers latency.
    assert latencies[5.0] < latencies[0.01]
    assert spans[5.0] < spans[0.01]


def test_updates_actually_applied_under_skew():
    database = tiny_ycsb()
    workload = small_workload(80, theta=5.0, n_containers=4)
    run_measurement(database, 1, workload.factory_for,
                    warmup_us=500.0, measure_us=8_000.0, n_epochs=2)
    hot = database.table_rows(ycsb.key_name(0), "kv")[0]["value"]
    assert hot != "x" * ycsb.RECORD_SIZE  # the hot key was updated
