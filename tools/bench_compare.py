#!/usr/bin/env python3
"""CI perf-regression gate over the machine-readable bench outputs.

Compares fresh ``BENCH_<name>.json`` files (written by the ablation
benchmarks' ``--tiny --json`` runs) against committed baselines in
``benchmarks/results/baselines/``.  Every run row inside a payload's
``runs`` list is keyed by its identifying fields (workload, mode,
scheme, skew, ...) and its metrics are diffed against the baseline row
with the same key:

* ``throughput_tps`` is the *gate*: a drop of more than ``--tolerance``
  (default 20%) fails the job.  The simulation is deterministic, so on
  unchanged code the delta is exactly 0 — the band absorbs intentional
  re-pricings, not noise.
* a payload may override both via a top-level ``"gate"`` block —
  ``{"gate": {"metric": "txns_per_kop", "tolerance": 0.5}}`` — for
  benches whose headline number is something other than simulated
  throughput (the wall-clock harness-speed bench gates on its
  calibration-normalized ``txns_per_kop``, with a wide band because
  wall-clock numbers are noisy where simulated ones are exact).
* ``latency_us`` / ``p50_us`` / ``p99_us`` / ``p999_us`` /
  ``abort_rate`` are reported for context, never gated (the serving
  bench's open-loop tail percentiles ride along here until the
  planned latency gate lands).
* a current payload's top-level ``"telemetry"`` block (per-measurement
  commit/abort latency percentiles from the telemetry registry) is
  rendered as a report-only table — also never gated, and absent
  blocks (older baselines, telemetry disabled) are simply skipped.
* a baseline key missing from the current output fails too (coverage
  must not silently shrink); new keys are reported as additions.

The per-bench delta table is printed and, when ``GITHUB_STEP_SUMMARY``
is set, appended to the CI job summary as markdown.

Usage::

    python tools/bench_compare.py ablation_replication \
        ablation_migration ablation_mvcc ablation_durability
    python tools/bench_compare.py --update ...   # refresh baselines

Exit status: 0 when every gate holds, 1 on any regression or missing
baseline/row.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
DEFAULT_CURRENT = REPO / "benchmarks" / "results"
DEFAULT_BASELINE = DEFAULT_CURRENT / "baselines"

#: Fields that *identify* a run row (configuration axes).  Everything
#: else is an output — counters move with the measurement and must
#: never leak into the key, or an in-band change would read as a
#: vanished baseline.
ID_KEYS = (
    "workload", "mode", "scheme", "cc_scheme", "skew", "placement",
    "read_from_replicas", "flush_interval_us", "checkpoint_every",
    "phase", "label", "variant", "backend", "containers",
    "arrival_rate",
)
#: Default gated metric (lower is worse); a payload's ``"gate"``
#: block overrides it.
GATE_METRIC = "throughput_tps"
#: Context metrics shown in the table.  ``p50_us``/``p999_us`` appear
#: only in open-loop serving rows; rows without a metric render blank.
REPORT_METRICS = ("latency_us", "p50_us", "p99_us", "p999_us",
                  "abort_rate")


def gate_of(payload: dict, default_tolerance: float) -> tuple[str, float]:
    """The (metric, tolerance) this payload is gated on.

    The baseline's ``"gate"`` block wins — the committed baseline
    defines the contract a fresh run is held to.
    """
    gate = payload.get("gate") or {}
    metric = gate.get("metric", GATE_METRIC)
    tolerance = float(gate.get("tolerance", default_tolerance))
    return metric, tolerance


def row_key(run: dict) -> str:
    """A stable identity for one run row: its configuration axes."""
    parts = []
    for key in ID_KEYS:
        if key in run:
            parts.append(f"{key}={run[key]}")
    return " ".join(parts)


def rows_of(payload: dict) -> dict[str, dict]:
    out: dict[str, dict] = {}
    for run in payload.get("runs", []):
        out[row_key(run)] = run
    return out


def load_payload(path: Path) -> dict:
    with path.open() as handle:
        return json.load(handle)


def pct(delta: float, base: float) -> str:
    if base == 0:
        return "n/a"
    return f"{delta / base * +100:+.1f}%"


def compare_bench(name: str, baseline_dir: Path, current_dir: Path,
                  tolerance: float) -> tuple[list[str], list[str]]:
    """Returns (markdown table lines, failure messages)."""
    lines: list[str] = []
    failures: list[str] = []
    base_path = baseline_dir / f"BENCH_{name}.json"
    cur_path = current_dir / f"BENCH_{name}.json"
    if not base_path.exists():
        failures.append(f"{name}: no committed baseline at "
                        f"{base_path}")
        return lines, failures
    if not cur_path.exists():
        failures.append(f"{name}: benchmark produced no {cur_path}")
        return lines, failures
    base_payload = load_payload(base_path)
    base_rows = rows_of(base_payload)
    cur_rows = rows_of(load_payload(cur_path))
    gate_metric, tolerance = gate_of(base_payload, tolerance)

    lines.append(f"### {name}")
    lines.append("")
    lines.append(f"| run | {gate_metric} base | now | Δ | "
                 + " | ".join(REPORT_METRICS) + " | verdict |")
    lines.append("|---|---|---|---|"
                 + "---|" * len(REPORT_METRICS) + "---|")
    for key in sorted(base_rows):
        base = base_rows[key]
        cur = cur_rows.get(key)
        if cur is None:
            failures.append(f"{name}: baseline run vanished: {key}")
            lines.append(f"| `{key}` | {base.get(gate_metric)} | "
                         f"MISSING | | "
                         + " | ".join("" for __ in REPORT_METRICS)
                         + " | :x: missing |")
            continue
        base_tput = float(base.get(gate_metric, 0.0))
        cur_tput = float(cur.get(gate_metric, 0.0))
        delta = cur_tput - base_tput
        regressed = base_tput > 0 and \
            cur_tput < base_tput * (1.0 - tolerance)
        if regressed:
            failures.append(
                f"{name}: {gate_metric} regressed "
                f"{pct(delta, base_tput)} (> {tolerance:.0%} band) "
                f"on: {key}")
        context = []
        for metric in REPORT_METRICS:
            b, c = base.get(metric), cur.get(metric)
            if b is None or c is None:
                context.append("")
            else:
                context.append(f"{c} ({pct(c - b, b or 1)})")
        verdict = ":x: regressed" if regressed else ":white_check_mark:"
        lines.append(
            f"| `{key}` | {base_tput:.1f} | {cur_tput:.1f} | "
            f"{pct(delta, base_tput)} | " + " | ".join(context)
            + f" | {verdict} |")
    for key in sorted(set(cur_rows) - set(base_rows)):
        lines.append(f"| `{key}` | — | "
                     f"{cur_rows[key].get(gate_metric)} | new | "
                     + " | ".join("" for __ in REPORT_METRICS)
                     + " | :new: |")
    lines.append("")
    lines.extend(telemetry_lines(name, load_payload(cur_path)))
    return lines, failures


def telemetry_lines(name: str, payload: dict) -> list[str]:
    """Report-only latency-percentile table from a payload's
    ``telemetry`` block (one row per measurement).  Never gated;
    payloads without the block yield no lines."""
    blocks = payload.get("telemetry")
    if not isinstance(blocks, list) or not blocks:
        return []
    lines = [f"#### {name}: telemetry latency percentiles "
             f"(report-only)", "",
             "| measurement | commits | aborts | commit p50 (µs) | "
             "commit p99 (µs) | commit p999 (µs) | abort p99 (µs) |",
             "|---|---|---|---|---|---|---|"]
    for index, block in enumerate(blocks):
        if not isinstance(block, dict):
            continue
        commit = block.get("txn_commit_latency_us") or {}
        abort = block.get("txn_abort_latency_us") or {}
        lines.append(
            f"| {index} | {block.get('commits', '—')} | "
            f"{block.get('aborts', '—')} | "
            f"{commit.get('p50', '—')} | {commit.get('p99', '—')} | "
            f"{commit.get('p999', '—')} | {abort.get('p99', '—')} |")
    lines.append("")
    return lines


def update_baselines(names: list[str], baseline_dir: Path,
                     current_dir: Path) -> None:
    baseline_dir.mkdir(parents=True, exist_ok=True)
    for name in names:
        src = current_dir / f"BENCH_{name}.json"
        if not src.exists():
            raise SystemExit(f"cannot update baseline: {src} missing "
                             f"(run the benchmark with --tiny --json "
                             f"first)")
        shutil.copy2(src, baseline_dir / src.name)
        print(f"baseline updated: {baseline_dir / src.name}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("names", nargs="+",
                        help="bench names (BENCH_<name>.json)")
    parser.add_argument("--baseline-dir", type=Path,
                        default=DEFAULT_BASELINE)
    parser.add_argument("--current-dir", type=Path,
                        default=DEFAULT_CURRENT)
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed fractional throughput drop "
                             "(default 0.20)")
    parser.add_argument("--update", action="store_true",
                        help="copy current results over the "
                             "baselines instead of comparing")
    args = parser.parse_args(argv)

    if args.update:
        update_baselines(args.names, args.baseline_dir,
                         args.current_dir)
        return 0

    all_lines = ["## Bench regression gate", ""]
    all_failures: list[str] = []
    for name in args.names:
        lines, failures = compare_bench(
            name, args.baseline_dir, args.current_dir, args.tolerance)
        all_lines.extend(lines)
        all_failures.extend(failures)

    if all_failures:
        all_lines.append("**FAILED:**")
        all_lines.extend(f"- {f}" for f in all_failures)
    else:
        all_lines.append(
            f"All gated metrics within the "
            f"{args.tolerance:.0%} band.")
    report = "\n".join(all_lines)
    print(report)

    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a") as handle:
            handle.write(report + "\n")

    if all_failures:
        for failure in all_failures:
            print(f"::error::{failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
