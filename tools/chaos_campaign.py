#!/usr/bin/env python3
"""Run a master-seeded chaos campaign (see ``docs/chaos.md``).

Every episode derives a deployment config and a fault schedule from
``--master-seed``, runs a workload slice on the deterministic
simulator, and must pass every applicable certificate from
``repro.formal.audit`` plus the campaign's liveness check.  Failing
episodes are re-run under full tracing (Chrome trace exported to
``--trace-dir``), shrunk by delta-debugging, and written as minimal
repro files to ``--seeds-dir`` — promote those into
``tests/chaos_seeds/`` to pin them as regressions.

Usage::

    PYTHONPATH=src python tools/chaos_campaign.py \
        --episodes 100 --master-seed 42 --json

    # pipeline self-test: arm a deliberate bug, watch it get caught
    PYTHONPATH=src python tools/chaos_campaign.py --episodes 20 \
        --inject-bug ack_before_flush --seeds-dir /tmp/seeds

The report is byte-reproducible: same arguments → identical JSON.
Exit status: 0 when every episode passed, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
if str(REPO / "src") not in sys.path:
    sys.path.insert(0, str(REPO / "src"))

from repro.chaos import BUG_TOGGLES, CampaignConfig, run_campaign  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--episodes", type=int, default=25,
                        help="number of episodes (default 25)")
    parser.add_argument("--master-seed", type=int, default=42,
                        help="the one seed everything derives from")
    parser.add_argument("--tiny", action="store_true",
                        help="smaller episodes (CI smoke)")
    parser.add_argument("--json", action="store_true",
                        help="print the full JSON report to stdout")
    parser.add_argument("--out", type=Path, default=None,
                        help="also write the JSON report to this file")
    parser.add_argument("--inject-bug", choices=BUG_TOGGLES,
                        default=None,
                        help="arm a deliberate bug toggle in every "
                             "episode (pipeline self-test)")
    parser.add_argument("--no-shrink", action="store_true",
                        help="skip delta-debugging of failures")
    parser.add_argument("--shrink-budget", type=int, default=60,
                        help="max episodes per shrink (default 60)")
    parser.add_argument("--seeds-dir", type=Path, default=None,
                        help="write minimized repro files here")
    parser.add_argument("--trace-dir", type=Path, default=None,
                        help="write failing-episode Chrome traces "
                             "here")
    args = parser.parse_args(argv)

    report = run_campaign(CampaignConfig(
        episodes=args.episodes,
        master_seed=args.master_seed,
        tiny=args.tiny,
        inject_bug=args.inject_bug,
        shrink=not args.no_shrink,
        shrink_budget=args.shrink_budget,
    ))

    if args.seeds_dir is not None and report.repros:
        args.seeds_dir.mkdir(parents=True, exist_ok=True)
        for repro in report.repros:
            path = args.seeds_dir / f"{repro['name']}.json"
            path.write_text(json.dumps(repro, indent=2,
                                       sort_keys=True) + "\n")
            print(f"repro: {path}", file=sys.stderr)
    if args.trace_dir is not None and report.traces:
        args.trace_dir.mkdir(parents=True, exist_ok=True)
        for name, payload in report.traces:
            (args.trace_dir / name).write_text(payload)
            print(f"trace: {args.trace_dir / name}", file=sys.stderr)

    payload = report.to_json()
    if args.out is not None:
        args.out.write_text(payload)
    if args.json:
        sys.stdout.write(payload)
    else:
        data = report.to_dict()
        print(f"chaos campaign: {data['passed']}/{data['episodes']} "
              f"episodes passed (master seed "
              f"{data['master_seed']}{', tiny' if data['tiny'] else ''}"
              f"{', bug ' + data['inject_bug'] if data['inject_bug'] else ''})")
        for failure in data["failures"]:
            kinds = ",".join(failure["failure_kinds"])
            extra = ""
            if "shrunk_actions" in failure:
                extra = (f" (shrunk {failure['original_actions']}→"
                         f"{failure['shrunk_actions']} actions)")
            print(f"  episode {failure['episode']}: {kinds}{extra}")
    return 0 if report.pass_rate == 1.0 else 1


if __name__ == "__main__":
    raise SystemExit(main())
