#!/usr/bin/env python3
"""Fail on broken intra-repository markdown links.

Scans every ``*.md`` file in the repository (skipping ``.git`` and
generated ``benchmarks/results``) for inline markdown links and
reference definitions, and verifies that every relative target exists
on disk.  External links (``http``/``https``/``mailto``) and pure
in-page anchors are ignored; a ``#fragment`` suffix on a file link is
stripped before the existence check.

Used by the CI ``docs-check`` job and by ``tests/test_docs_links.py``,
so a renamed or deleted file breaks the build instead of the docs.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SKIP_DIRS = {".git", "results", "__pycache__", ".pytest_cache"}

#: Inline links ``[text](target)`` — target must not itself contain
#: parentheses or whitespace (none of ours do).
INLINE_LINK = re.compile(r"\[[^\]]*\]\(([^()\s]+)\)")
#: Reference definitions ``[label]: target``.
REFERENCE_DEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)

EXTERNAL_PREFIXES = ("http://", "https://", "mailto:")


def markdown_files(root: Path) -> list[Path]:
    files = []
    for path in sorted(root.rglob("*.md")):
        if not SKIP_DIRS.intersection(part for part in path.parts):
            files.append(path)
    return files


def link_targets(text: str) -> list[str]:
    return INLINE_LINK.findall(text) + REFERENCE_DEF.findall(text)


def broken_links(root: Path) -> list[tuple[Path, str]]:
    """All (markdown file, target) pairs whose target is missing."""
    broken: list[tuple[Path, str]] = []
    for md_file in markdown_files(root):
        for target in link_targets(md_file.read_text()):
            if target.startswith(EXTERNAL_PREFIXES):
                continue
            path_part = target.split("#", 1)[0]
            if not path_part:  # pure in-page anchor
                continue
            if path_part.startswith("/"):
                resolved = root / path_part.lstrip("/")
            else:
                resolved = md_file.parent / path_part
            if not resolved.exists():
                broken.append((md_file, target))
    return broken


def main() -> int:
    root = REPO_ROOT
    files = markdown_files(root)
    broken = broken_links(root)
    for md_file, target in broken:
        print(f"BROKEN: {md_file.relative_to(root)} -> {target}")
    print(f"checked {len(files)} markdown files, "
          f"{len(broken)} broken links")
    return 1 if broken else 0


if __name__ == "__main__":
    sys.exit(main())
