#!/usr/bin/env python3
"""Validate an exported Chrome trace (``tools/trace_export.py``).

Structural checks on the trace-event JSON so CI catches a broken
exporter (or a span-tree regression in the instrumentation) without a
human loading the file into Perfetto:

* every ``"X"`` event carries the required keys, non-negative ``ts``
  and ``dur``, and a unique ``args.span_id``;
* every ``parent_span_id`` resolves to an emitted span on the same
  track, and the child's interval nests inside its parent's (small
  epsilon for the 3-decimal rounding);
* events are sorted by timestamp (the exporter's deterministic
  ordering contract);
* each process id used by an event has a ``process_name`` metadata
  record;
* every metric series name in the ``metrics`` snapshot (label suffix
  stripped) appears in the telemetry catalog — an unknown name means
  someone bypassed the registry's catalog check.

Usage::

    python tools/check_trace.py benchmarks/results/trace_smallbank.json
    python tools/check_trace.py --wallclock trace_threads.json

``--wallclock`` validates traces produced on a wall-clock execution
backend (``metadata.backend: threads``): timestamps are real
microseconds — still monotone and well-nested, but subject to OS
scheduling jitter, so interval-nesting checks use a millisecond-scale
epsilon instead of the virtual-time rounding step.  The mode and the
trace's recorded clock must agree: a virtual trace checked with
``--wallclock`` (or vice versa) is reported as a problem.

Exit status: 0 when the trace is well-formed, 1 with one line per
problem otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
if str(REPO / "src") not in sys.path:
    sys.path.insert(0, str(REPO / "src"))

#: Slack for interval-nesting checks: exports round ts/dur to 3
#: decimals, so a child closed at its parent's end can overshoot by
#: up to one rounding step.
EPSILON = 0.002

#: Wall-clock slack (µs): on the threads backend a span's children are
#: stamped by real clock reads on different OS threads, so nesting can
#: wobble by scheduling jitter; 1ms covers a preemption slice without
#: masking genuinely escaped spans.
WALLCLOCK_EPSILON = 1000.0

REQUIRED_X_KEYS = ("name", "ph", "pid", "tid", "ts", "dur", "args")


def check_events(events: list,
                 epsilon: float = EPSILON) -> list[str]:
    problems: list[str] = []
    spans: dict[int, dict] = {}
    named_pids: set = set()
    used_pids: set = set()
    last_ts = None
    for index, event in enumerate(events):
        ph = event.get("ph")
        if ph == "M":
            if event.get("name") == "process_name":
                named_pids.add(event.get("pid"))
            continue
        if ph != "X":
            problems.append(f"event {index}: unexpected phase {ph!r}")
            continue
        for key in REQUIRED_X_KEYS:
            if key not in event:
                problems.append(f"event {index}: missing {key!r}")
        ts = event.get("ts", 0)
        dur = event.get("dur", 0)
        if ts < 0 or dur < 0:
            problems.append(f"event {index} ({event.get('name')}): "
                            f"negative ts/dur ({ts}, {dur})")
        if last_ts is not None and ts < last_ts:
            problems.append(f"event {index}: timestamps not sorted "
                            f"({ts} after {last_ts})")
        last_ts = ts
        used_pids.add(event.get("pid"))
        span_id = (event.get("args") or {}).get("span_id")
        if span_id is None:
            problems.append(f"event {index} ({event.get('name')}): "
                            f"no args.span_id")
            continue
        if span_id in spans:
            problems.append(f"duplicate span_id {span_id}")
        spans[span_id] = event
    for event in spans.values():
        parent_id = event["args"].get("parent_span_id")
        if parent_id is None:
            continue
        parent = spans.get(parent_id)
        name = event.get("name")
        if parent is None:
            problems.append(f"span {event['args']['span_id']} "
                            f"({name}): parent {parent_id} not in "
                            f"trace")
            continue
        if parent.get("pid") != event.get("pid"):
            problems.append(f"span {name}: parent on different track")
        if event["ts"] < parent["ts"] - epsilon or \
                event["ts"] + event["dur"] > \
                parent["ts"] + parent["dur"] + epsilon:
            problems.append(
                f"span {name} [{event['ts']}, "
                f"{event['ts'] + event['dur']}] escapes parent "
                f"{parent.get('name')} [{parent['ts']}, "
                f"{parent['ts'] + parent['dur']}]")
    for pid in sorted(used_pids - named_pids):
        problems.append(f"pid {pid} has events but no process_name "
                        f"metadata")
    if not spans:
        problems.append("trace contains no spans")
    return problems


def check_metrics(metrics: dict) -> list[str]:
    from repro.telemetry.catalog import CATALOG
    problems = []
    for series in metrics:
        base = series.split("{", 1)[0]
        if base not in CATALOG:
            problems.append(f"metric {series!r}: base name {base!r} "
                            f"not in the telemetry catalog")
    return problems


def check_payload(payload: dict,
                  wallclock: bool = False) -> list[str]:
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["payload has no traceEvents list"]
    problems = []
    clock = (payload.get("metadata") or {}).get("clock")
    if clock is not None:
        virtual_trace = clock == "virtual-microseconds"
        if wallclock and virtual_trace:
            problems.append(
                "--wallclock given but the trace records a virtual "
                "clock (produced on the sim backend)")
        if not wallclock and not virtual_trace:
            problems.append(
                f"trace records clock {clock!r}; re-run with "
                "--wallclock to validate wall-clock traces")
    problems.extend(check_events(
        events, epsilon=WALLCLOCK_EPSILON if wallclock else EPSILON))
    metrics = payload.get("metrics")
    if isinstance(metrics, dict):
        problems.extend(check_metrics(metrics))
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", type=Path,
                        help="trace JSON from tools/trace_export.py")
    parser.add_argument("--wallclock", action="store_true",
                        help="validate a wall-clock (threads backend) "
                             "trace: real-microsecond timestamps, "
                             "jitter-tolerant nesting epsilon")
    args = parser.parse_args(argv)
    payload = json.loads(args.trace.read_text())
    problems = check_payload(payload, wallclock=args.wallclock)
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}", file=sys.stderr)
        return 1
    events = payload["traceEvents"]
    spans = sum(1 for e in events if e.get("ph") == "X")
    backend = (payload.get("metadata") or {}).get("backend", "sim")
    print(f"OK: {args.trace} — {spans} spans, "
          f"{len(payload.get('metrics', {}))} metric series, "
          f"backend={backend}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
