#!/usr/bin/env python3
"""cProfile runner over a tiny harness benchmark.

Answers "where does the interpreter spend its time?" for the hot paths
the wall-clock microbench (``benchmarks/bench_harness_speed.py``)
gates: one seeded closed-loop measurement is driven under cProfile,
the top-N functions are printed by cumulative and by internal time,
and a machine-readable snapshot is written so future PRs can diff
where the time went.

Usage::

    PYTHONPATH=src python tools/profile_hotpath.py
    PYTHONPATH=src python tools/profile_hotpath.py \
        --workload ycsb --scheme mvocc --top 30 \
        --json benchmarks/results/profile_hotpath.json
    PYTHONPATH=src python tools/profile_hotpath.py --backend threads

The snapshot JSON maps ``file:line(function)`` to call counts and
timings, and carries the run's telemetry metrics snapshot under
``telemetry_metrics`` so the profile is attributable to the simulated
work it measured; ``tools/bench_compare.py`` does not gate it
(profiles are machine-dependent diagnostics, not regression metrics).
"""

from __future__ import annotations

import argparse
import cProfile
import io
import json
import pstats
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
if str(REPO / "src") not in sys.path:
    sys.path.insert(0, str(REPO / "src"))

RESULTS_DIR = REPO / "benchmarks" / "results"


def default_snapshot(backend: str) -> Path:
    """Per-backend snapshot path: sim keeps the historical name so
    archived diffs stay comparable; other backends get a suffixed
    file (``profile_hotpath_threads.json``)."""
    if backend == "sim":
        return RESULTS_DIR / "profile_hotpath.json"
    return RESULTS_DIR / f"profile_hotpath_{backend}.json"

WORKLOADS = ("smallbank", "ycsb", "tpcc-neworder",
             "tpcc-stocklevel")


def _drive(workload: str, scheme: str, measure_us: float,
           backend: str = "sim") -> tuple[int, dict]:
    """One seeded measurement; returns (transactions processed,
    telemetry metrics snapshot)."""
    from repro.bench.harness import run_measurement
    from repro.core.database import ReactorDatabase
    from repro.core.deployment import (
        RangePlacement,
        shared_everything_with_affinity,
        shared_nothing,
    )
    from repro.experiments.common import tpcc_database
    from repro.workloads import smallbank, tpcc, ycsb

    if workload == "smallbank":
        database = ReactorDatabase(
            shared_everything_with_affinity(4, cc_scheme=scheme,
                                            backend=backend),
            smallbank.declarations(40))
        smallbank.load(database, 40)
        factory_for = smallbank.SmallbankWorkload(40).factory_for
        workers = 4
    elif workload == "ycsb":
        n_keys, n_containers = 64, 4
        database = ReactorDatabase(
            shared_nothing(n_containers, mpl=4, cc_scheme=scheme,
                           placement=RangePlacement(
                               n_keys // n_containers),
                           backend=backend),
            [(ycsb.key_name(i), ycsb.KEY_REACTOR)
             for i in range(n_keys)])
        for i in range(n_keys):
            name = ycsb.key_name(i)
            database.load(name, "kv", [
                {"key": name, "value": "x" * ycsb.RECORD_SIZE}])
        factory_for = ycsb.YcsbWorkload(
            1, theta=0.6, n_containers=n_containers, n_keys=n_keys,
            read_fraction=0.5).factory_for
        workers = 8
    elif workload == "tpcc-neworder":
        database = tpcc_database("shared-nothing-async", 2, mpl=4,
                                 cc_scheme=scheme, backend=backend)
        factory_for = tpcc.TpccWorkload(
            n_warehouses=2, mix=tpcc.NEW_ORDER_ONLY,
            remote_item_prob=0.1, invalid_item_prob=0.0).factory_for
        workers = 4
    elif workload == "tpcc-stocklevel":
        database = tpcc_database("shared-nothing-async", 2, mpl=4,
                                 cc_scheme=scheme, backend=backend)
        factory_for = tpcc.TpccWorkload(
            n_warehouses=2,
            mix=(("stock_level", 1.0),)).factory_for
        workers = 4
    else:  # pragma: no cover - argparse restricts choices
        raise ValueError(f"unknown workload {workload!r}")

    result = run_measurement(database, workers, factory_for,
                             warmup_us=5_000.0, measure_us=measure_us,
                             n_epochs=4)
    metrics = database.telemetry.metrics_snapshot()
    database.close()
    return len(result.raw_stats), metrics


def _snapshot(stats: pstats.Stats, top: int) -> list[dict]:
    """The top-``top`` cumulative entries, machine-readable."""
    rows = []
    entries = sorted(stats.stats.items(),
                     key=lambda item: item[1][3], reverse=True)
    for (filename, line, name), (cc, nc, tottime, cumtime, __) in \
            entries[:top]:
        short = filename
        try:
            short = str(Path(filename).relative_to(REPO))
        except ValueError:
            pass
        rows.append({
            "function": f"{short}:{line}({name})",
            "ncalls": nc,
            "primitive_calls": cc,
            "tottime": round(tottime, 4),
            "cumtime": round(cumtime, 4),
        })
    return rows


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload", choices=WORKLOADS,
                        default="smallbank")
    parser.add_argument("--scheme", default="occ")
    parser.add_argument("--backend", choices=("sim", "threads"),
                        default="sim",
                        help="execution backend to profile (threads "
                             "interprets --measure-us as wall-clock)")
    parser.add_argument("--measure-us", type=float, default=30_000.0,
                        help="virtual measurement window (default "
                             "30ms: a few thousand transactions)")
    parser.add_argument("--top", type=int, default=25)
    parser.add_argument("--json", type=Path, default=None,
                        help="snapshot path (default: per-backend "
                             "profile_hotpath[_<backend>].json; use "
                             "/dev/null to skip)")
    args = parser.parse_args(argv)
    if args.json is None:
        args.json = default_snapshot(args.backend)

    profiler = cProfile.Profile()
    profiler.enable()
    txns, telemetry_metrics = _drive(args.workload, args.scheme,
                                     args.measure_us,
                                     backend=args.backend)
    profiler.disable()

    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats("cumulative").print_stats(args.top)
    stats.sort_stats("tottime").print_stats(args.top)
    print(buffer.getvalue())
    print(f"profiled {txns} transactions "
          f"({args.workload}/{args.scheme}, "
          f"backend={args.backend})")

    if str(args.json) not in ("/dev/null", "NUL"):
        args.json.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "workload": args.workload,
            "scheme": args.scheme,
            "backend": args.backend,
            "measure_us": args.measure_us,
            "transactions": txns,
            "top_cumulative": _snapshot(stats, args.top),
            "telemetry_metrics": telemetry_metrics,
        }
        args.json.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
