#!/usr/bin/env python3
"""Export a deterministic Chrome trace from a tiny SmallBank run.

Builds a 3-container shared-nothing deployment with full tracing
(every root sampled, system tracks on), drives a short seeded
closed-loop measurement, and writes the telemetry facade's Chrome
trace-event JSON — loadable in Perfetto (https://ui.perfetto.dev) or
``chrome://tracing``.

The simulation runs entirely on the virtual clock and the tracer adds
no scheduler events and consumes no randomness, so the same seed
yields a *byte-identical* file on every run and under either hot-path
engine (``REPRO_HOTPATH=reference`` vs batched) — CI exports twice and
``cmp``s the bytes, then validates the structure with
``tools/check_trace.py``.

Usage::

    PYTHONPATH=src python tools/trace_export.py --out trace.json
    PYTHONPATH=src python tools/trace_export.py \
        --seed 7 --durability group --measure-us 20000 --out -
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
if str(REPO / "src") not in sys.path:
    sys.path.insert(0, str(REPO / "src"))

DEFAULT_OUT = REPO / "benchmarks" / "results" / \
    "trace_smallbank.json"


def export_trace(seed: int = 42, n_customers: int = 12,
                 workers: int = 3, measure_us: float = 10_000.0,
                 durability: str = "group",
                 scheme: str = "occ") -> str:
    """One seeded SmallBank run under full tracing; returns the
    Chrome trace-event JSON text."""
    from repro.bench.harness import run_measurement
    from repro.core.database import ReactorDatabase
    from repro.core.deployment import RangePlacement, shared_nothing
    from repro.durability.config import DurabilityConfig
    from repro.telemetry.config import full_tracing
    from repro.workloads import smallbank

    dur = None
    if durability != "off":
        dur = DurabilityConfig(enabled=True, mode=durability)
    deployment = shared_nothing(
        3, mpl=4, cc_scheme=scheme,
        placement=RangePlacement(4), durability=dur)
    deployment.telemetry = full_tracing()
    database = ReactorDatabase(deployment,
                               smallbank.declarations(n_customers))
    smallbank.load(database, n_customers)
    workload = smallbank.SmallbankWorkload(n_customers)
    run_measurement(database, workers, workload.factory_for,
                    warmup_us=2_000.0, measure_us=measure_us,
                    n_epochs=2, seed=seed)
    return database.telemetry.export_chrome_json()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--customers", type=int, default=12)
    parser.add_argument("--workers", type=int, default=3)
    parser.add_argument("--measure-us", type=float, default=10_000.0)
    parser.add_argument("--durability", default="group",
                        choices=("off", "sync", "group", "async"))
    parser.add_argument("--scheme", default="occ")
    parser.add_argument("--out", default=str(DEFAULT_OUT),
                        help="output path, or '-' for stdout")
    args = parser.parse_args(argv)

    text = export_trace(seed=args.seed, n_customers=args.customers,
                        workers=args.workers,
                        measure_us=args.measure_us,
                        durability=args.durability,
                        scheme=args.scheme)
    if args.out == "-":
        sys.stdout.write(text)
        return 0
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(text)
    import json
    payload = json.loads(text)
    events = payload.get("traceEvents", [])
    spans = sum(1 for e in events if e.get("ph") == "X")
    print(f"wrote {out} ({spans} spans, "
          f"{len(payload.get('metrics', {}))} metric series, "
          f"seed {args.seed})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
